"""Solver fast path: one-time kernel setup, per-iteration native dispatch.

The paper's Section 1 motivates the framework with the PETSc arrangement —
format-independent iterative solvers linked against format-specific BLAS.
:class:`SolverContext` is that link done once instead of per call: given a
matrix instance it (optionally) picks a storage format through
:func:`repro.search.format_select.select_format`, batch-compiles the
kernels the solver will need (``mvm``, ``mvm_t``, ``ts_lower``,
``ts_upper``, ``spmm``, ``spmm_t``) through
:func:`repro.core.service.compile_many`, and then
serves every solver iteration through the bound kernels with preallocated,
reused workspaces — no per-iteration ``np.zeros``, no per-call dispatch
dictionary walks.

Fallback semantics are graceful and observable: an operation whose kernel
cannot be compiled (no legal plan for the format, toolchain missing, ...)
falls back to the per-call BLAS dispatch of :mod:`repro.blas.api`, the
reason is kept in :attr:`SolverContext.fallbacks`, and the
``solver.fallback.*`` counters tick.  A context never raises because a
*fast* path is unavailable — only because the operation itself is
impossible.

Instrumentation (namespace ``solver.*``):

- ``solver.setup`` / ``solver.iterate`` phase timers — setup (selection +
  batch compilation) vs. iteration time of every solve;
- ``solver.contexts`` — contexts constructed;
- ``solver.iterations`` — total solver iterations executed;
- ``solver.fallback.compile`` / ``solver.fallback.select`` — fast-path
  demotions, by reason;
- ``solver.normal`` — phase timer of the one-time normal-equation
  product (``A^T A`` / ``A A^T``) construction.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blas import api as blas_api
from repro.formats.base import SparseFormat
from repro.formats.csr import CsrMatrix
from repro.instrument import INSTR
from repro.ir import kernels as _kernels

#: every operation a context knows how to bind
ALL_OPS = ("mvm", "mvm_t", "ts_lower", "ts_upper", "spmm", "spmm_t")

#: op name -> (program factory, matrix array name, dense array names)
_OP_SPECS = {
    "mvm": (_kernels.mvm, "A", ("x", "y")),
    "mvm_t": (_kernels.mvm_t, "A", ("x", "y")),
    "ts_lower": (_kernels.ts_lower, "L", ("b",)),
    "ts_upper": (_kernels.ts_upper, "U", ("b",)),
    "spmm": (_kernels.spmm, "A", ("X", "Y")),
    "spmm_t": (_kernels.spmm_t, "A", ("X", "Y")),
}


class BoundOp:
    """One operation bound to one matrix instance: the kernel entry point
    (native function or generated Python), a prebuilt arrays dict, and the
    integer parameter values — everything a call needs besides the
    vectors, resolved once at setup."""

    __slots__ = ("name", "kernel", "fn", "arrays", "params", "backend_used")

    def __init__(self, name: str, kernel, fn, arrays: Dict[str, object],
                 params: Dict[str, int], backend_used: str):
        self.name = name
        self.kernel = kernel
        self.fn = fn
        self.arrays = arrays
        self.params = params
        self.backend_used = backend_used

    def apply(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """y = op(x) through the bound kernel (mvm / mvm_t)."""
        a = self.arrays
        a["x"] = x
        a["y"] = y
        self.fn(a, self.params)
        return y

    def apply_mm(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Y = op(X) for a dense panel through the bound kernel (spmm /
        spmm_t).  The panel width ``k`` is the one parameter no binding
        can pin (dense operands are unbound), so it is taken from ``X``
        per call."""
        a = self.arrays
        a["X"] = X
        a["Y"] = Y
        self.params["k"] = int(X.shape[1])
        self.fn(a, self.params)
        return Y

    def apply_solve(self, b: np.ndarray) -> np.ndarray:
        """In-place triangular solve on ``b`` through the bound kernel."""
        a = self.arrays
        a["b"] = b
        self.fn(a, self.params)
        return b

    def __repr__(self):
        return f"<BoundOp {self.name} backend={self.backend_used}>"


def _triangular_split(A: SparseFormat) -> Tuple[CsrMatrix, CsrMatrix]:
    """(lower-including-diagonal, upper-including-diagonal) CSR parts,
    annotated triangular so the compiler can discharge guards.

    Vectorized: when ``A`` is already CSR the split is two boolean masks
    over ``colind`` — masking preserves the within-row column order, so
    the parts are valid CSR without any re-sort.  Other formats extract
    triples once; ``from_coo`` detects sorted triples in O(nnz)."""
    from repro.formats.base import csr_rowptr

    with INSTR.phase("solver.split"):
        if type(A) is CsrMatrix:
            rows = np.repeat(np.arange(A.nrows, dtype=np.int64),
                             np.diff(A.rowptr))
            low = A.colind <= rows
            up = A.colind >= rows
            L = CsrMatrix(csr_rowptr(rows[low], A.nrows), A.colind[low],
                          A.values[low], A.shape)
            U = CsrMatrix(csr_rowptr(rows[up], A.nrows), A.colind[up],
                          A.values[up], A.shape)
        else:
            rows, cols, vals = A.to_coo_arrays()
            low = rows >= cols
            up = rows <= cols
            L = CsrMatrix.from_coo(rows[low], cols[low], vals[low], A.shape)
            U = CsrMatrix.from_coo(rows[up], cols[up], vals[up], A.shape)
        L.annotate_triangular("lower")
        U.annotate_triangular("upper")
    return L, U


def _reference_triangular_split(A: SparseFormat) -> Tuple[CsrMatrix, CsrMatrix]:
    """Loop oracle for :func:`_triangular_split` (differential testing and
    the conversion benchmark's baseline): element-wise partitioning through
    the retained ``_reference_*`` data plane."""
    rows, cols, vals = A.to_coo_arrays()
    r_low, c_low, v_low = [], [], []
    r_up, c_up, v_up = [], [], []
    for r, c, v in zip(rows, cols, vals):
        if r >= c:
            r_low.append(int(r))
            c_low.append(int(c))
            v_low.append(float(v))
        if r <= c:
            r_up.append(int(r))
            c_up.append(int(c))
            v_up.append(float(v))
    L = CsrMatrix._reference_from_coo(
        np.array(r_low, dtype=np.int64), np.array(c_low, dtype=np.int64),
        np.array(v_low, dtype=np.float64), A.shape)
    L.annotate_triangular("lower")
    U = CsrMatrix._reference_from_coo(
        np.array(r_up, dtype=np.int64), np.array(c_up, dtype=np.int64),
        np.array(v_up, dtype=np.float64), A.shape)
    U.annotate_triangular("upper")
    return L, U


class SolverContext:
    """Per-matrix solver state: bound kernels plus reusable workspaces.

    Parameters
    ----------
    A:
        A format instance (or a dense ndarray, converted to CSR).
    ops:
        Operations to bind, a subset of :data:`ALL_OPS`.  Triangular ops
        bind to the lower/upper triangular CSR parts of ``A`` (including
        the diagonal), exactly the split the symmetric Gauss–Seidel
        preconditioner uses.
    backend:
        Forwarded to the compiler: ``"c"`` (default) dispatches iterations
        through the native shared object, falling back to the generated
        Python kernel when no toolchain exists; ``"python"`` uses the
        generated Python directly.
    select:
        When true, run automatic format selection for the matvec program
        first and bind the winning format instead of ``A``'s own.  A
        string selects the mode directly: ``select="auto"`` rides the
        structure-adaptive autotuner, so repeated contexts over matrices
        of the same structure class skip tuning entirely (the winner
        cache serves them); ``select="model"`` / ``select="empirical"``
        pick the analytical / measured routes.
    candidates / select_mode / workload:
        Forwarded to :func:`repro.search.format_select.select_format`.
        ``workload`` may be a callable (empirical measurement inputs) or
        a workload-family name — ``workload="spmm"`` tunes the selection
        micro-benchmarks on the SpMM kernel instead of matvec (the
        CSR-vs-CSC winner flips between the two).  For the ``auto`` and
        ``empirical`` modes the context's execution backend is forwarded
        too, so the measurements time the same dispatch the solver will
        use.
    opt:
        Native optimization tier for every bound kernel (``"none"`` /
        ``"tiled"`` / ``"fast"``), forwarded to the compiler.  The default
        (``None``) defers to ``REPRO_OPT`` — *unless* format selection ran
        and crowned a tiered winner, in which case the context binds the
        tuned (format, tier) pair: ``select="auto"`` over the C backend
        measures both tiers per top-k format, and what won the
        micro-benchmark is what the solver iterates through.
    register:
        When true (default), publish the bound kernels as per-instance
        handles so the plain functional API (:func:`repro.blas.api.mvm`
        and friends) transparently uses them for this matrix.
    """

    def __init__(self, A, ops: Sequence[str] = ("mvm",), *,
                 backend: str = "c", parallel: str = "none",
                 select: Union[bool, str] = False,
                 candidates: Optional[Sequence[str]] = None,
                 select_mode: str = "model",
                 workload: Union[None, str, Callable] = None,
                 cache: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 opt: Optional[str] = None,
                 register: bool = True):
        ops = tuple(ops)
        for op in ops:
            if op not in _OP_SPECS:
                raise ValueError(f"unknown op {op!r}; choose from {ALL_OPS}")
        if isinstance(select, str):
            # select="auto" / "model" / "empirical" names the mode directly
            select_mode, select = select, True
        if not isinstance(A, SparseFormat):
            A = CsrMatrix.from_dense(np.asarray(A))
        self.ops = ops
        self.backend = backend
        self.opt = opt
        self.selection = None
        self.selection_error: Optional[str] = None
        self.fallbacks: Dict[str, str] = {}
        self._bound: Dict[str, Optional[BoundOp]] = {}
        self._diag: Optional[np.ndarray] = None
        self._normal: Dict[str, SparseFormat] = {}
        self.L: Optional[CsrMatrix] = None
        self.U: Optional[CsrMatrix] = None

        INSTR.count("solver.contexts")
        with INSTR.phase("solver.setup"):
            if select:
                A = self._select(A, candidates, select_mode, workload)
                if opt is None and self.selection is not None:
                    # bind the tuned (format, tier) pair: the winner's tier
                    # is what won the selection micro-benchmark
                    self.opt = self.selection.choices[0].tier
            self.A = A
            if "ts_lower" in ops or "ts_upper" in ops:
                self.L, self.U = _triangular_split(A)
            self._compile(ops, backend, parallel, cache, max_workers)
            # reused matvec outputs (the solvers pass their own buffers for
            # values that must survive a second matvec); the 2-D panel
            # workspaces are lazily sized on the first matmat call, since
            # the panel width k is unknown until then
            self._y = np.zeros(A.nrows)
            self._yt = np.zeros(A.ncols)
            self._Y2: Optional[np.ndarray] = None
            self._Y2t: Optional[np.ndarray] = None
            if register:
                self._register_handles()

    # -- setup ------------------------------------------------------------
    def _select(self, A, candidates, select_mode, workload):
        from repro.core.plan import PlanError
        from repro.search.format_select import select_format

        kwargs = {"mode": select_mode}
        if select_mode in ("auto", "empirical"):
            # measure through the dispatch the solver will actually use
            kwargs["backend"] = self.backend
        if candidates is not None:
            kwargs["candidates"] = candidates
        if workload is not None:
            kwargs["workload"] = workload
        try:
            self.selection = select_format(_kernels.mvm(), "A", A, **kwargs)
        except PlanError as e:
            self.selection_error = str(e)
            INSTR.count("solver.fallback.select")
            return A
        return self.selection.best[1]

    def _compile(self, ops, backend, parallel, cache, max_workers):
        from repro.core.compiler import infer_param_values
        from repro.core.service import compile_many

        programs, bindings, specs = [], [], []
        for op in ops:
            factory, mat_name, _vecs = _OP_SPECS[op]
            inst = {"mvm": lambda: self.A, "mvm_t": lambda: self.A,
                    "spmm": lambda: self.A, "spmm_t": lambda: self.A,
                    "ts_lower": lambda: self.L,
                    "ts_upper": lambda: self.U}[op]()
            programs.append(factory())
            bindings.append({mat_name: inst})
            specs.append((op, mat_name, inst))
        batch = compile_many(programs, bindings, backend=backend,
                             parallel=parallel, cache=cache,
                             max_workers=max_workers, opt=self.opt)
        for (op, mat_name, inst), outcome, program in zip(specs, batch,
                                                          programs):
            if not outcome.ok:
                self.fallbacks[op] = (f"{type(outcome.error).__name__}: "
                                      f"{outcome.error}")
                INSTR.count("solver.fallback.compile")
                self._bound[op] = None
                continue
            kernel = outcome.kernel
            fn = kernel.native() if kernel.backend == "c" else None
            if fn is None:
                fn = kernel.callable()
                if kernel.backend == "c" and kernel.fallback_reason:
                    # native lowering/toolchain fell through: still fast
                    # (generated Python), but record why it is not native
                    self.fallbacks.setdefault(
                        op, f"native: {kernel.fallback_reason}")
            params = {k: int(v) for k, v in
                      infer_param_values(program, {mat_name: inst}).items()}
            arrays: Dict[str, object] = {mat_name: inst}
            self._bound[op] = BoundOp(op, kernel, fn, arrays, params,
                                      kernel.backend_used)

    def _register_handles(self) -> None:
        for op, bound in self._bound.items():
            if bound is None:
                continue
            target = bound.arrays[_OP_SPECS[op][1]]
            if op in ("mvm", "mvm_t"):
                blas_api.register_kernel_handle(target, op, bound.apply)
            elif op in ("spmm", "spmm_t"):
                blas_api.register_kernel_handle(target, op, bound.apply_mm)
            else:
                blas_api.register_kernel_handle(target, op, bound.apply_solve)

    # -- introspection ----------------------------------------------------
    @property
    def format_name(self) -> str:
        return self.A.format_name

    def bound(self, op: str) -> Optional[BoundOp]:
        """The BoundOp serving ``op``, or None when it fell back."""
        return self._bound.get(op)

    @property
    def backends(self) -> Dict[str, str]:
        """op -> backend actually executing it (``"c"``, ``"c+openmp"``,
        ``"python"``, or ``"blas"`` after a compile fallback)."""
        return {op: (b.backend_used if b is not None else "blas")
                for op, b in self._bound.items()}

    @property
    def diag(self) -> np.ndarray:
        """The diagonal of ``A`` (computed once, reused by Jacobi/SOR and
        the preconditioners)."""
        if self._diag is None:
            n = min(self.A.shape)
            rows, cols, vals = self.A.to_coo_arrays()
            on_diag = rows == cols
            d = np.zeros(n)
            d[rows[on_diag]] = vals[on_diag]
            self._diag = d
        return self._diag

    def normal(self, which: str = "ata", **spgemm_kwargs) -> SparseFormat:
        """The normal-equation product — ``A^T A`` for ``which="ata"``
        (the CGNR/least-squares operator) or ``A A^T`` for ``"aat"``
        (CGNE) — computed once through the sparse×sparse product
        :func:`repro.blas.api.spgemm` and cached on the context, so a
        solver that iterates on the normal operator pays the symbolic +
        numeric passes a single time.  Keyword arguments (``out_format``,
        ``tier``) are forwarded to ``spgemm`` on the first call of each
        ``which``."""
        if which not in ("ata", "aat"):
            raise ValueError(f"which must be 'ata' or 'aat', got {which!r}")
        got = self._normal.get(which)
        if got is None:
            with INSTR.phase("solver.normal"):
                rows, cols, vals = self.A.to_coo_arrays()
                At = CsrMatrix.from_coo(cols, rows, vals,
                                        (self.A.ncols, self.A.nrows))
                if which == "ata":
                    got = blas_api.spgemm(At, self.A, **spgemm_kwargs)
                else:
                    got = blas_api.spgemm(self.A, At, **spgemm_kwargs)
            self._normal[which] = got
        return got

    # -- bound operations -------------------------------------------------
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``out = A x`` through the bound kernel (``out`` defaults to the
        context's reusable workspace — pass an explicit buffer when the
        result must survive the next matvec)."""
        if out is None:
            out = self._y
        b = self._bound.get("mvm")
        if b is None:
            return blas_api.dispatch_mvm(self.A, x, out)
        return b.apply(x, out)

    def matvec_t(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``out = A^T x`` through the bound kernel."""
        if out is None:
            out = self._yt
        b = self._bound.get("mvm_t")
        if b is None:
            return blas_api.dispatch_mvm_t(self.A, x, out)
        return b.apply(x, out)

    def matmat(self, X: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``out = A X`` for a dense ``n × k`` panel through the bound
        ``spmm`` kernel (multi-RHS fast path).  ``out`` defaults to a
        reused ``(nrows, k)`` workspace, (re)allocated only when the panel
        width changes — pass an explicit buffer when the result must
        survive the next matmat."""
        if X.shape[1] == 0:
            # k = 0: nothing to compute — hand back an empty panel without
            # evicting the width-keyed workspace for a degenerate width
            return np.zeros((self.A.nrows, 0)) if out is None else out
        if out is None:
            k = X.shape[1]
            if self._Y2 is None or self._Y2.shape[1] != k:
                self._Y2 = np.zeros((self.A.nrows, k))
            out = self._Y2
        b = self._bound.get("spmm")
        if b is None:
            return blas_api.dispatch_mm(self.A, X, out)
        return b.apply_mm(X, out)

    def matmat_t(self, X: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``out = A^T X`` through the bound ``spmm_t`` kernel."""
        if X.shape[1] == 0:
            return np.zeros((self.A.ncols, 0)) if out is None else out
        if out is None:
            k = X.shape[1]
            if self._Y2t is None or self._Y2t.shape[1] != k:
                self._Y2t = np.zeros((self.A.ncols, k))
            out = self._Y2t
        b = self._bound.get("spmm_t")
        if b is None:
            return blas_api.dispatch_mm_t(self.A, X, out)
        return b.apply_mm(X, out)

    def lower_solve(self, b: np.ndarray, in_place: bool = False) -> np.ndarray:
        """``b := L^{-1} b`` with L the lower-including-diagonal part."""
        if self.L is None:
            raise ValueError("context was built without 'ts_lower'")
        if not in_place:
            b = b.copy()
        op = self._bound.get("ts_lower")
        if op is None:
            return blas_api.dispatch_ts_lower(self.L, b)
        return op.apply_solve(b)

    def upper_solve(self, b: np.ndarray, in_place: bool = False) -> np.ndarray:
        """``b := U^{-1} b`` with U the upper-including-diagonal part."""
        if self.U is None:
            raise ValueError("context was built without 'ts_upper'")
        if not in_place:
            b = b.copy()
        op = self._bound.get("ts_upper")
        if op is None:
            return blas_api.dispatch_ts_upper(self.U, b)
        return op.apply_solve(b)

    def preconditioner(self, kind: str = "sgs"):
        """A preconditioner wired to this context's bound kernels:
        ``"sgs"`` (symmetric Gauss–Seidel, needs the ts ops), ``"jacobi"``
        (diagonal scaling), or ``"none"``."""
        from repro.solvers.preconditioners import (
            IdentityPreconditioner,
            JacobiPreconditioner,
            TriangularPreconditioner,
        )

        if kind == "none":
            return IdentityPreconditioner()
        if kind == "jacobi":
            return JacobiPreconditioner(self.A, context=self)
        if kind == "sgs":
            return TriangularPreconditioner(self.A, context=self)
        raise ValueError(f"kind must be 'sgs', 'jacobi' or 'none', got {kind!r}")

    def __repr__(self):
        parts = ", ".join(f"{op}={used}" for op, used in self.backends.items())
        sel = " selected" if self.selection is not None else ""
        tier = f" opt={self.opt}" if self.opt not in (None, "none") else ""
        return f"<SolverContext {self.format_name}{sel}{tier} [{parts}]>"


MatVec = Callable[[np.ndarray], np.ndarray]


def resolve_matvec(A, matvec: Optional[MatVec], context: Optional[SolverContext]):
    """Shared solver plumbing: normalize ``(A, matvec, context)`` into
    ``(matrix, mv)`` where ``mv(x, out)`` computes A x into ``out``.

    Accepts a :class:`SolverContext` directly in the ``A`` position (the
    matrix is taken from the context), an explicit ``matvec`` callable
    (wrapped; its own allocation discipline is respected), or a plain
    format instance (per-call BLAS dispatch into the caller's buffer).
    """
    if isinstance(A, SolverContext):
        context = A
        A = context.A
    if matvec is not None:
        def mv(x, out=None, _f=matvec):
            return _f(x)
        return A, mv
    if context is not None:
        return A, context.matvec

    def mv(x, out=None, _A=A):
        if out is None:
            return blas_api.mvm(_A, x)
        return blas_api.mvm(_A, x, out)

    return A, mv


MatMat = Callable[[np.ndarray], np.ndarray]


def resolve_matmat(A, matmat: Optional[MatMat], context: Optional[SolverContext]):
    """:func:`resolve_matvec` for dense panels: normalize ``(A, matmat,
    context)`` into ``(matrix, mm)`` where ``mm(X, out)`` computes ``A X``
    into ``out`` for a dense ``n × k`` panel."""
    if isinstance(A, SolverContext):
        context = A
        A = context.A
    if matmat is not None:
        def mm(X, out=None, _f=matmat):
            return _f(X)
        return A, mm
    if context is not None:
        return A, context.matmat

    def mm(X, out=None, _A=A):
        if out is None:
            return blas_api.mm(_A, X)
        return blas_api.mm(_A, X, out)

    return A, mm

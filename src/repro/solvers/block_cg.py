"""Blocked conjugate gradients: k right-hand sides per SpMM.

Each column follows exactly the same trajectory as an independent
:func:`repro.solvers.cg.cg` run — same update order, same stopping rules,
per-column step lengths (this is *batched* CG, not the coupled block-CG of
O'Leary that shares one Krylov space across columns).  What the batching
buys is the memory traffic: one SpMM per iteration reads the matrix once
for all k columns instead of k times, which is where the multi-RHS
speedup lives.

The columns-match-cg property is bitwise, not approximate, on a fixed
backend: every reduction (``r @ z``, ``p @ Ap``, ``norm(r)``) is taken
over a contiguous vector just as ``cg`` takes it, and every vector update
applies the same scalar in the same order.  To keep the per-column
vectors contiguous the block state is stored transposed — ``(k, n)``
row-major, one contiguous row per right-hand side — and repacked to the
``(n, k)`` panel layout only around the SpMM call.  A column that hits
its stopping rule is frozen (its updates stop) while the rest of the
block keeps iterating, exactly as its independent run would have
stopped.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matmat

MatMat = Callable[[np.ndarray], np.ndarray]


def block_cg(
    A,
    B: np.ndarray,
    X0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    matmat: Optional[MatMat] = None,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solve ``A X = B`` column-by-column for symmetric positive-definite
    ``A``, with one SpMM per iteration serving every still-active column.

    ``B`` is ``(n, k)`` (a 1-D ``b`` is treated as ``k=1``).  Returns
    ``(X, iterations, final_residual_norms)`` where ``iterations`` and
    ``final_residual_norms`` are per-column arrays; column ``j`` of every
    output is bitwise what ``cg(A, B[:, j], ...)`` returns on the same
    backend.
    """
    B = np.asarray(B, dtype=float)
    squeeze = B.ndim == 1
    if squeeze:
        B = B[:, None]
    n, k = B.shape
    if max_iter is None:
        max_iter = 10 * n
    A, mm = resolve_matmat(A, matmat, context)

    # transposed (k, n) state: row j is column j's contiguous cg vector
    Bt = np.ascontiguousarray(B.T)
    if X0 is None:
        Xt = np.zeros((k, n))
    else:
        X0 = np.asarray(X0, dtype=float)
        Xt = np.ascontiguousarray((X0[:, None] if X0.ndim == 1 else X0).T).copy()
    panel = np.empty((n, k))                 # (n, k) SpMM operand workspace
    APt = np.empty((k, n))

    def mm_t(Vt: np.ndarray) -> np.ndarray:
        """One SpMM over the whole block: (k, n) in, (k, n) out."""
        panel[...] = Vt.T
        APt[...] = mm(panel, None).T
        return APt

    Rt = Bt - mm_t(Xt)
    Zt = Rt
    Pt = Zt.copy()
    rz = np.array([float(Rt[j] @ Zt[j]) for j in range(k)])
    bnorm = np.array([float(np.linalg.norm(Bt[j])) or 1.0 for j in range(k)])
    iters = np.zeros(k, dtype=np.int64)
    resnorm = np.zeros(k)
    active = np.ones(k, dtype=bool)
    it = 0
    with INSTR.phase("solver.iterate"):
        while it < max_iter and active.any():
            for j in np.flatnonzero(active):
                rnorm = float(np.linalg.norm(Rt[j]))
                if rnorm <= tol * bnorm[j]:
                    active[j] = False
                    resnorm[j] = rnorm
            if not active.any():
                break
            mm_t(Pt)
            alpha = np.zeros(k)
            for j in np.flatnonzero(active):
                denom = float(Pt[j] @ APt[j])
                if denom == 0.0:
                    active[j] = False
                    resnorm[j] = float(np.linalg.norm(Rt[j]))
                    continue
                alpha[j] = rz[j] / denom
            act = active
            Xt[act] += alpha[act, None] * Pt[act]
            Rt[act] = Rt[act] - alpha[act, None] * APt[act]
            Zt = Rt
            for j in np.flatnonzero(act):
                rz_new = float(Rt[j] @ Zt[j])
                beta = rz_new / rz[j] if rz[j] != 0 else 0.0
                rz[j] = rz_new
                Pt[j] = Zt[j] + beta * Pt[j]
            iters[act] += 1
            it += 1
    for j in np.flatnonzero(active):        # max_iter exhausted
        resnorm[j] = float(np.linalg.norm(Rt[j]))
    INSTR.count("solver.iterations", int(iters.sum()))
    X = np.ascontiguousarray(Xt.T)
    if squeeze:
        return X[:, 0], iters[0], resnorm[0]
    return X, iters, resnorm

"""Conjugate gradients on sparse formats.

Written once against a matrix-vector-product callable: the PETSc-style
format-independent iterative method of the paper's introduction.  The
``matvec`` argument defaults to the BLAS dispatch; a
:class:`~repro.solvers.context.SolverContext` (passed as ``context=`` or
directly in the ``A`` position) routes every iteration through its bound
compiled kernels, and a compiled kernel also slots in directly as
``matvec`` (see ``examples/fem_cg.py``).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec

MatVec = Callable[[np.ndarray], np.ndarray]


def cg(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    matvec: Optional[MatVec] = None,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Returns ``(x, iterations, final_residual_norm)``.  ``A`` may be a
    format instance (default BLAS matvec), a :class:`SolverContext`, or
    anything if ``matvec`` is given explicitly.
    """
    A, mv = resolve_matvec(A, matvec, context)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    Ap = np.zeros(n)                      # matvec workspace, reused each iteration
    r = b - mv(x, Ap)
    z = precond(r) if precond else r
    p = z.copy()
    rz = float(r @ z)
    if max_iter is None:
        max_iter = 10 * n
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    with INSTR.phase("solver.iterate"):
        while it < max_iter:
            rnorm = float(np.linalg.norm(r))
            if rnorm <= tol * bnorm:
                break
            Ap = mv(p, Ap)
            denom = float(p @ Ap)
            if denom == 0.0:
                break
            alpha = rz / denom
            x += alpha * p
            r = r - alpha * Ap
            z = precond(r) if precond else r
            rz_new = float(r @ z)
            beta = rz_new / rz if rz != 0 else 0.0
            rz = rz_new
            p = z + beta * p
            it += 1
    INSTR.count("solver.iterations", it)
    return x, it, float(np.linalg.norm(r))

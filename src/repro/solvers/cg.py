"""Conjugate gradients on sparse formats.

Written once against a matrix-vector-product callable: the PETSc-style
format-independent iterative method of the paper's introduction.  The
``matvec`` argument defaults to the BLAS dispatch, but a compiled kernel
from :func:`repro.core.compile_kernel` slots in directly (see
``examples/fem_cg.py``).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.api import mvm
from repro.formats.base import SparseFormat

MatVec = Callable[[np.ndarray], np.ndarray]


def _default_matvec(A: SparseFormat) -> MatVec:
    def mv(x: np.ndarray) -> np.ndarray:
        return mvm(A, x)

    return mv


def cg(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    matvec: Optional[MatVec] = None,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Returns ``(x, iterations, final_residual_norm)``.  ``A`` may be a
    format instance (default BLAS matvec) or anything if ``matvec`` is
    given explicitly.
    """
    if matvec is None:
        matvec = _default_matvec(A)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    r = b - matvec(x)
    z = precond(r) if precond else r
    p = z.copy()
    rz = float(r @ z)
    if max_iter is None:
        max_iter = 10 * n
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    while it < max_iter:
        rnorm = float(np.linalg.norm(r))
        if rnorm <= tol * bnorm:
            break
        Ap = matvec(p)
        denom = float(p @ Ap)
        if denom == 0.0:
            break
        alpha = rz / denom
        x += alpha * p
        r -= alpha * Ap
        z = precond(r) if precond else r
        rz_new = float(r @ z)
        beta = rz_new / rz if rz != 0 else 0.0
        rz = rz_new
        p = z + beta * p
        it += 1
    return x, it, float(np.linalg.norm(r))

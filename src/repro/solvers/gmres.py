"""Restarted GMRES for non-symmetric systems."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec

MatVec = Callable[[np.ndarray], np.ndarray]


def gmres(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    restart: int = 30,
    max_iter: int = 1000,
    matvec: Optional[MatVec] = None,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` with GMRES(restart); returns (x, total inner
    iterations, final residual norm)."""
    A, mv = resolve_matvec(A, matvec, context)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    bnorm = float(np.linalg.norm(b)) or 1.0
    r_buf = np.zeros(n)                  # matvec workspace, reused per sweep
    total = 0
    res = float("inf")
    with INSTR.phase("solver.iterate"):
        while total < max_iter:
            r = b - mv(x, r_buf)
            beta = float(np.linalg.norm(r))
            res = beta
            if beta <= tol * bnorm:
                break
            m = min(restart, max_iter - total)
            Q = np.zeros((n, m + 1))
            H = np.zeros((m + 1, m))
            Q[:, 0] = r / beta
            g = np.zeros(m + 1)
            g[0] = beta
            cs = np.zeros(m)
            sn = np.zeros(m)
            k_used = 0
            for k in range(m):
                w = mv(Q[:, k], r_buf)
                for i in range(k + 1):
                    H[i, k] = float(Q[:, i] @ w)
                    w -= H[i, k] * Q[:, i]
                H[k + 1, k] = float(np.linalg.norm(w))
                if H[k + 1, k] > 1e-14:
                    Q[:, k + 1] = w / H[k + 1, k]
                # apply accumulated Givens rotations
                for i in range(k):
                    t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                    H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                    H[i, k] = t
                denom = float(np.hypot(H[k, k], H[k + 1, k]))
                if denom == 0.0:
                    k_used = k + 1
                    break
                cs[k] = H[k, k] / denom
                sn[k] = H[k + 1, k] / denom
                H[k, k] = denom
                H[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]
                k_used = k + 1
                total += 1
                if abs(g[k + 1]) <= tol * bnorm:
                    break
            # solve the small triangular system
            y = np.zeros(k_used)
            for i in range(k_used - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1:k_used] @ y[i + 1:]) / H[i, i]
            x = x + Q[:, :k_used] @ y
            res = abs(float(g[k_used])) if k_used < m + 1 else res
            if res <= tol * bnorm:
                break
    INSTR.count("solver.iterations", total)
    return x, total, float(np.linalg.norm(b - mv(x, r_buf)))

"""Preconditioners built from the BLAS layer — triangular solves applied
exactly where the paper's TS kernel earns its keep.

Each preconditioner optionally rides a
:class:`~repro.solvers.context.SolverContext`: when one is supplied (built
with the triangular ops), the per-application solves run through the
context's bound compiled kernels and the triangular split / diagonal are
shared instead of recomputed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.api import ts_lower_solve, ts_upper_solve
from repro.formats.base import SparseFormat
from repro.formats.csr import CsrMatrix


class IdentityPreconditioner:
    """No-op preconditioner."""

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return r


class JacobiPreconditioner:
    """Diagonal scaling M = D."""

    def __init__(self, A: SparseFormat, context=None):
        if context is not None:
            diag = context.diag
            if np.any(diag == 0.0):
                raise ValueError("Jacobi preconditioner needs a non-zero diagonal")
            self.inv_diag = 1.0 / diag
            return
        n = min(A.shape)
        self.inv_diag = np.empty(n)
        for i in range(n):
            d = A.get(i, i)
            if d == 0.0:
                raise ValueError("Jacobi preconditioner needs a non-zero diagonal")
            self.inv_diag[i] = 1.0 / d

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return r * self.inv_diag


class TriangularPreconditioner:
    """Symmetric Gauss–Seidel preconditioner M = (L+D) D^{-1} (D+U):
    applying M^{-1} is one forward and one backward triangular solve —
    built directly on the TS kernels.  With a ``context`` carrying bound
    ``ts_lower`` / ``ts_upper`` kernels, both solves dispatch through
    them (native when the C backend is live)."""

    def __init__(self, A: SparseFormat, context=None):
        self._ctx = None
        if context is not None and context.L is not None \
                and context.U is not None:
            self._ctx = context
            self.L = context.L
            self.U = context.U
            self.diag = context.diag
        else:
            rows, cols, vals = A.to_coo_arrays()
            low = rows >= cols
            up = rows <= cols
            self.L = CsrMatrix.from_coo(rows[low], cols[low], vals[low], A.shape)
            self.L.annotate_triangular("lower")
            self.U = CsrMatrix.from_coo(rows[up], cols[up], vals[up], A.shape)
            self.U.annotate_triangular("upper")
            n = min(A.shape)
            self.diag = np.array([A.get(i, i) for i in range(n)])
        if np.any(self.diag == 0.0):
            raise ValueError("triangular preconditioner needs a non-zero diagonal")

    def __call__(self, r: np.ndarray) -> np.ndarray:
        if self._ctx is not None:
            z = self._ctx.lower_solve(r)
            z *= self.diag
            return self._ctx.upper_solve(z, in_place=True)
        z = ts_lower_solve(self.L, r)
        z = z * self.diag
        return ts_upper_solve(self.U, z)

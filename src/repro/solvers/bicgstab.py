"""BiCGSTAB for non-symmetric systems (van der Vorst 1992) — a second
Krylov method over the same BLAS interface, rounding out the
format-independent solver layer."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec

MatVec = Callable[[np.ndarray], np.ndarray]


def bicgstab(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    matvec: Optional[MatVec] = None,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b``; returns (x, iterations, final residual norm)."""
    A, mv = resolve_matvec(A, matvec, context)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    if max_iter is None:
        max_iter = 10 * n
    M = precond if precond is not None else (lambda v: v)

    # two distinct matvec workspaces: v must survive the t = A s_hat call
    # (it feeds the next iteration's direction update)
    v_buf = np.zeros(n)
    t_buf = np.zeros(n)
    r = b - mv(x, t_buf)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    res = float(np.linalg.norm(r))
    with INSTR.phase("solver.iterate"):
        while it < max_iter and res > tol * bnorm:
            rho_new = float(r_hat @ r)
            if rho_new == 0.0:
                break  # breakdown: restart would be needed
            if it == 0:
                p = r.copy()
            else:
                beta = (rho_new / rho) * (alpha / omega)
                p = r + beta * (p - omega * v)
            rho = rho_new
            p_hat = M(p)
            v = mv(p_hat, v_buf)
            denom = float(r_hat @ v)
            if denom == 0.0:
                break
            alpha = rho / denom
            s = r - alpha * v
            if float(np.linalg.norm(s)) <= tol * bnorm:
                x = x + alpha * p_hat
                r = s
                res = float(np.linalg.norm(r))
                it += 1
                break
            s_hat = M(s)
            t = mv(s_hat, t_buf)
            tt = float(t @ t)
            if tt == 0.0:
                break
            omega = float(t @ s) / tt
            x = x + alpha * p_hat + omega * s_hat
            r = s - omega * t
            res = float(np.linalg.norm(r))
            it += 1
            if omega == 0.0:
                break
    INSTR.count("solver.iterations", it)
    return x, it, res

"""Power iteration and PageRank — the paper's web-search/data-mining
motivation ("some web-search engines ... compute eigenvectors of large
sparse matrices", Section 1)."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.api import mvm, mvm_t
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec

MatVec = Callable[[np.ndarray], np.ndarray]


def power_method(
    A,
    v0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    matvec: Optional[MatVec] = None,
    context: Optional[SolverContext] = None,
) -> Tuple[float, np.ndarray, int]:
    """Dominant eigenpair of ``A``; returns (eigenvalue, eigenvector,
    iterations)."""
    if matvec is None or isinstance(A, SolverContext):
        A, mv = resolve_matvec(A, matvec, context)
        n = A.nrows
    else:
        mv = lambda x, out=None: matvec(x)  # noqa: E731
        n = v0.shape[0] if v0 is not None else None
        if n is None:
            raise ValueError("v0 is required when matvec is supplied")
    if v0 is None:
        # a deterministic start with energy in every mode (an all-ones
        # start can be nearly orthogonal to the dominant eigenvector)
        rng = np.random.default_rng(12345)
        v = rng.standard_normal(n)
    else:
        v = v0.astype(float).copy()
    v /= np.linalg.norm(v)
    w_buf = np.zeros(n)                     # matvec workspace, reused
    lam = 0.0
    it = 0
    with INSTR.phase("solver.iterate"):
        while it < max_iter:
            w = mv(v, w_buf)
            lam = float(v @ w)
            # residual-based stop: ||A v - lam v|| small relative to |lam|
            resid = float(np.linalg.norm(w - lam * v))
            if resid <= tol * max(1.0, abs(lam)):
                break
            norm = float(np.linalg.norm(w))
            if norm == 0.0:
                INSTR.count("solver.iterations", it)
                return 0.0, v, it
            v = w / norm
            it += 1
    INSTR.count("solver.iterations", it)
    return lam, v, it


def pagerank(
    A: SparseFormat,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 200,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, int]:
    """PageRank over a link matrix ``A`` (A[i][j] != 0 means page j links
    to page i); returns (rank vector, iterations).

    ``backend`` (``"c"`` or ``"python"``) builds a
    :class:`SolverContext` over the normalized transition matrix and runs
    every iteration through its bound compiled kernel; the default keeps
    the per-call BLAS dispatch.
    """
    n = A.nrows
    if A.ncols != n:
        raise ValueError("pagerank needs a square link matrix")
    # column-stochastic normalization of the link structure
    out_degree = mvm_t(A, np.ones(n))
    rows, cols, vals = A.to_coo_arrays()
    norm_vals = np.array([
        v / out_degree[c] if out_degree[c] != 0 else 0.0
        for v, c in zip(vals, cols)
    ])
    from repro.formats.csr import CsrMatrix

    M = CsrMatrix.from_coo(rows, cols, norm_vals, A.shape)
    if backend is not None:
        ctx = SolverContext(M, ops=("mvm",), backend=backend)
        mv = ctx.matvec
    else:
        mv = lambda x, out=None: mvm(M, x, out)  # noqa: E731
    dangling = out_degree == 0.0
    contrib = np.zeros(n)                   # matvec workspace, reused
    r = np.full(n, 1.0 / n)
    it = 0
    with INSTR.phase("solver.iterate"):
        while it < max_iter:
            contrib = mv(r, contrib)
            dang_mass = float(r[dangling].sum()) / n
            r_new = (1.0 - damping) / n + damping * (contrib + dang_mass)
            if float(np.abs(r_new - r).sum()) <= tol:
                r = r_new
                break
            r = r_new
            it += 1
    INSTR.count("solver.iterations", it)
    return r, it

"""Power iteration and PageRank — the paper's web-search/data-mining
motivation ("some web-search engines ... compute eigenvectors of large
sparse matrices", Section 1)."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.api import mvm, mvm_t
from repro.formats.base import SparseFormat

MatVec = Callable[[np.ndarray], np.ndarray]


def power_method(
    A,
    v0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    matvec: Optional[MatVec] = None,
) -> Tuple[float, np.ndarray, int]:
    """Dominant eigenpair of ``A``; returns (eigenvalue, eigenvector,
    iterations)."""
    if matvec is None:
        matvec = lambda x: mvm(A, x)  # noqa: E731
        n = A.nrows
    else:
        n = v0.shape[0] if v0 is not None else None
        if n is None:
            raise ValueError("v0 is required when matvec is supplied")
    if v0 is None:
        # a deterministic start with energy in every mode (an all-ones
        # start can be nearly orthogonal to the dominant eigenvector)
        rng = np.random.default_rng(12345)
        v = rng.standard_normal(n)
    else:
        v = v0.astype(float).copy()
    v /= np.linalg.norm(v)
    lam = 0.0
    it = 0
    while it < max_iter:
        w = matvec(v)
        lam = float(v @ w)
        # residual-based stop: ||A v - lam v|| small relative to |lam|
        resid = float(np.linalg.norm(w - lam * v))
        if resid <= tol * max(1.0, abs(lam)):
            break
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v, it
        v = w / norm
        it += 1
    return lam, v, it


def pagerank(
    A: SparseFormat,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> Tuple[np.ndarray, int]:
    """PageRank over a link matrix ``A`` (A[i][j] != 0 means page j links
    to page i); returns (rank vector, iterations)."""
    n = A.nrows
    if A.ncols != n:
        raise ValueError("pagerank needs a square link matrix")
    # column-stochastic normalization of the link structure
    out_degree = mvm_t(A, np.ones(n))
    rows, cols, vals = A.to_coo_arrays()
    norm_vals = np.array([
        v / out_degree[c] if out_degree[c] != 0 else 0.0
        for v, c in zip(vals, cols)
    ])
    from repro.formats.csr import CsrMatrix

    M = CsrMatrix.from_coo(rows, cols, norm_vals, A.shape)
    dangling = out_degree == 0.0
    r = np.full(n, 1.0 / n)
    it = 0
    while it < max_iter:
        contrib = mvm(M, r)
        dang_mass = float(r[dangling].sum()) / n
        r_new = (1.0 - damping) / n + damping * (contrib + dang_mass)
        if float(np.abs(r_new - r).sum()) <= tol:
            r = r_new
            break
        r = r_new
        it += 1
    return r, it

"""Gauss–Seidel and SOR sweeps.

A Gauss–Seidel sweep is exactly a lower-triangular solve with the matrix's
lower part — the reason the paper's TS kernel matters for iterative
methods.  The implementation extracts the strictly-upper product via the
BLAS layer and forward-substitutes through the lower part.  With a
:class:`~repro.solvers.context.SolverContext` the per-iteration residual
matvec and the diagonal come from the context's bound state; the fused
relaxation sweep itself stays a Python loop (it is not a pure triangular
solve).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import SparseFormat
from repro.formats.csr import CsrMatrix
from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec


def _split(A: SparseFormat) -> Tuple[CsrMatrix, CsrMatrix]:
    """(lower-including-diagonal, strictly-upper) parts, both CSR."""
    rows, cols, vals = A.to_coo_arrays()
    low = rows >= cols
    L = CsrMatrix.from_coo(rows[low], cols[low], vals[low], A.shape)
    U = CsrMatrix.from_coo(rows[~low], cols[~low], vals[~low], A.shape)
    return L, U


def gauss_seidel(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` with Gauss–Seidel: (L+D) x_{k+1} = b - U x_k."""
    return sor(A, b, omega=1.0, x0=x0, tol=tol, max_iter=max_iter,
               context=context)


def sor(
    A,
    b: np.ndarray,
    omega: float = 1.2,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Successive over-relaxation with parameter ``omega`` in (0, 2)."""
    if not (0.0 < omega < 2.0):
        raise ValueError("SOR requires 0 < omega < 2")
    if isinstance(A, SolverContext):
        context = A
    A, mv = resolve_matvec(A, None, context)
    n = A.nrows
    L, U = _split(A)
    diag = context.diag if context is not None \
        else np.array([A.get(i, i) for i in range(n)])
    if np.any(diag == 0.0):
        raise ValueError("SOR requires a non-zero diagonal")
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    Ax = np.zeros(n)                       # matvec workspace, reused
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    res = float("inf")
    rowptr, colind, values = L.rowptr, L.colind, L.values
    with INSTR.phase("solver.iterate"):
        while it < max_iter:
            r = b - mv(x, Ax)
            res = float(np.linalg.norm(r))
            if res <= tol * bnorm:
                break
            # forward sweep: x_i := (1-w) x_i + w/d_i * (b_i - sum_{j<i} a_ij x_j
            #                                            - sum_{j>i} a_ij x_j)
            for i in range(n):
                acc = b[i]
                for jj in range(rowptr[i], rowptr[i + 1]):
                    c = colind[jj]
                    if c < i:
                        acc -= values[jj] * x[c]
                for jj in range(U.rowptr[i], U.rowptr[i + 1]):
                    acc -= U.values[jj] * x[U.colind[jj]]
                x[i] = (1.0 - omega) * x[i] + omega * acc / diag[i]
            it += 1
    INSTR.count("solver.iterations", it)
    return x, it, res

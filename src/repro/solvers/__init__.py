"""Iterative methods built on the sparse BLAS layer.

These are the format-independent high-level codes of the paper's Section 1
story: written once against the BLAS interface (or against a compiled
kernel), usable with any format.
"""

from repro.solvers.context import ALL_OPS, BoundOp, SolverContext
from repro.solvers.bicgstab import bicgstab
from repro.solvers.block_cg import block_cg
from repro.solvers.cg import cg
from repro.solvers.jacobi import jacobi
from repro.solvers.sor import gauss_seidel, sor
from repro.solvers.power import power_method, pagerank
from repro.solvers.gmres import gmres
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    TriangularPreconditioner,
)

__all__ = [
    "ALL_OPS",
    "BoundOp",
    "SolverContext",
    "bicgstab",
    "block_cg",
    "cg",
    "jacobi",
    "gauss_seidel",
    "sor",
    "power_method",
    "pagerank",
    "gmres",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "TriangularPreconditioner",
]

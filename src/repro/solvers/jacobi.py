"""Jacobi iteration: x_{k+1} = D^{-1} (b - (A - D) x_k)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.solvers.context import SolverContext, resolve_matvec


def jacobi(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    context: Optional[SolverContext] = None,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` by Jacobi sweeps (requires non-zero diagonal and
    convergence conditions such as diagonal dominance).  Returns
    ``(x, iterations, final_residual_norm)``."""
    if isinstance(A, SolverContext):
        context = A
    A, mv = resolve_matvec(A, None, context)
    n = A.nrows
    diag = context.diag if context is not None \
        else np.array([A.get(i, i) for i in range(n)])
    if np.any(diag == 0.0):
        raise ValueError("Jacobi requires a non-zero diagonal")
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    Ax = np.zeros(n)                       # matvec workspace, reused
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    res = float("inf")
    with INSTR.phase("solver.iterate"):
        while it < max_iter:
            Ax = mv(x, Ax)
            r = b - Ax
            res = float(np.linalg.norm(r))
            if res <= tol * bnorm:
                break
            x = x + r / diag
            it += 1
    INSTR.count("solver.iterations", it)
    return x, it, res

"""Jacobi iteration: x_{k+1} = D^{-1} (b - (A - D) x_k)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blas.api import mvm
from repro.formats.base import SparseFormat


def jacobi(
    A: SparseFormat,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> Tuple[np.ndarray, int, float]:
    """Solve ``A x = b`` by Jacobi sweeps (requires non-zero diagonal and
    convergence conditions such as diagonal dominance).  Returns
    ``(x, iterations, final_residual_norm)``."""
    n = A.nrows
    diag = np.array([A.get(i, i) for i in range(n)])
    if np.any(diag == 0.0):
        raise ValueError("Jacobi requires a non-zero diagonal")
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    res = float("inf")
    while it < max_iter:
        Ax = mvm(A, x)
        r = b - Ax
        res = float(np.linalg.norm(r))
        if res <= tol * bnorm:
            break
        x = x + r / diag
        it += 1
    return x, it, res

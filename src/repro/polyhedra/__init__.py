"""Exact rational polyhedral machinery.

This package is the mathematical substrate of the compiler:

- :mod:`repro.polyhedra.linexpr` — affine expressions over named variables
  with exact rational coefficients.
- :mod:`repro.polyhedra.system` — systems of affine equalities/inequalities
  (polyhedra), i.e. the paper's *dependence classes*
  ``D (i_s, i_d)^T + d >= 0``.
- :mod:`repro.polyhedra.fm` — Fourier–Motzkin elimination: feasibility,
  projection, implied equalities, and rational sample points.
- :mod:`repro.polyhedra.lex` — lexicographic non-negativity / positivity
  tests for vectors of affine functions over a polyhedron (the legality
  condition ``F_d(i_d) - F_s(i_s) ⪰ 0`` of paper Section 3.1).
- :mod:`repro.polyhedra.farkas` — affine Farkas-lemma certificates, used to
  characterize the space of legal embedding coefficients (paper Section 3.1
  problem 2, following Feautrier).
"""

from repro.polyhedra.linexpr import LinExpr, var, const
from repro.polyhedra.system import Constraint, System, GE, EQ, ge, le, eq, gt, lt
from repro.polyhedra.fm import (
    is_feasible,
    project,
    implied_equalities,
    sample_point,
    eliminate_variable,
    bounds_of,
    implies,
)
from repro.polyhedra.lex import (
    lex_nonneg,
    lex_positive,
    can_be_first_positive,
    first_positive_dims,
)
from repro.polyhedra.farkas import farkas_nonneg_system, farkas_certificate

__all__ = [
    "LinExpr",
    "var",
    "const",
    "Constraint",
    "System",
    "GE",
    "EQ",
    "ge",
    "le",
    "eq",
    "gt",
    "lt",
    "is_feasible",
    "project",
    "implied_equalities",
    "sample_point",
    "eliminate_variable",
    "bounds_of",
    "implies",
    "lex_nonneg",
    "lex_positive",
    "can_be_first_positive",
    "first_positive_dims",
    "farkas_nonneg_system",
    "farkas_certificate",
]

"""Fourier–Motzkin elimination over exact rationals.

Provides the decision procedures the compiler needs:

- :func:`is_feasible` — emptiness test for a rational polyhedron.  Dependence
  polyhedra contain only integer points with integer-coefficient constraints,
  so rational *in*feasibility soundly proves integer infeasibility; rational
  feasibility is treated conservatively by callers.
- :func:`project` — project a system onto a subset of variables.
- :func:`bounds_of` — exact (rational) lower/upper bounds of an affine
  function over a polyhedron.
- :func:`implied_equalities` — variable pairs forced equal everywhere in the
  polyhedron (used to discover common-enumeration alignments from dependence
  classes, paper Section 4.1).
- :func:`sample_point` — a rational point inside a non-empty polyhedron
  (used by the Farkas machinery to exhibit legal embedding coefficients).

Systems in this compiler are small (≈5–15 variables, tens of constraints),
so the classic doubly-exponential worst case never bites; we still substitute
through equalities first and drop duplicate constraints to keep intermediate
systems tight.

Because the compiler asks the same feasibility/projection questions over and
over (every candidate embedding re-tests largely identical dependence
polyhedra), :func:`is_feasible` and :func:`project` are memoized process-wide
under a *canonical signature* of the system — the frozen set of its
normalized constraints, which is order-insensitive and exact.  The memo is
semantics-preserving (same question, same answer) and bounded; call
:func:`clear_memos` to reset it (tests do).
"""

from __future__ import annotations

import itertools
import threading
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.instrument import INSTR
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, GE, EQ

Inf = float  # only +/- inf sentinels
NEG_INF = float("-inf")
POS_INF = float("inf")


# ---------------------------------------------------------------------------
# Process-wide memoization
# ---------------------------------------------------------------------------

#: cap per memo; on overflow the oldest half is dropped (insertion order)
_MEMO_CAP = 1 << 17

_FEASIBLE_MEMO: Dict[FrozenSet, bool] = {}
_PROJECT_MEMO: Dict[Tuple[FrozenSet, FrozenSet], System] = {}

#: guards insertion/eviction (the eviction loop iterates the dict, which a
#: concurrent insert would break); lookups stay lock-free ``dict.get``
_MEMO_LOCK = threading.Lock()


def system_signature(system: System) -> FrozenSet:
    """Canonical, order-insensitive signature of a constraint system.

    Constraints are already normalized (integer coefficients, gcd 1, fixed
    equality sign), so two systems denoting the same conjunction of
    constraints — regardless of construction order — share a signature."""
    return frozenset((c.kind, c.expr) for c in system.constraints)


def _memo_put(memo: Dict, key, value) -> None:
    with _MEMO_LOCK:
        if len(memo) >= _MEMO_CAP:
            for k in list(itertools.islice(iter(memo), len(memo) // 2)):
                del memo[k]
        memo[key] = value


def clear_memos() -> None:
    """Drop the process-wide feasibility/projection memos."""
    with _MEMO_LOCK:
        _FEASIBLE_MEMO.clear()
        _PROJECT_MEMO.clear()


def _solve_equality_for(c: Constraint, v: str) -> LinExpr:
    """Given equality ``expr == 0`` with a non-zero coefficient on ``v``,
    return the affine expression equal to ``v``."""
    a = c.expr.coeff(v)
    if a == 0:
        raise ValueError(f"constraint does not involve {v}")
    rest = c.expr - LinExpr({v: a})
    return rest * Fraction(-1, 1) * (Fraction(1) / a)


def eliminate_variable(system: System, v: str) -> System:
    """Project out variable ``v`` (exact rational projection)."""
    INSTR.count("fm.eliminations")
    # Prefer substitution through an equality: no constraint blowup.
    for c in system.equalities():
        if c.expr.coeff(v) != 0:
            sol = _solve_equality_for(c, v)
            return system.substitute({v: sol})
    lowers: List[Constraint] = []
    uppers: List[Constraint] = []
    rest: List[Constraint] = []
    for c in system:
        a = c.expr.coeff(v)
        if a == 0:
            rest.append(c)
        elif a > 0:
            lowers.append(c)
        else:
            uppers.append(c)
    out = list(rest)
    for lo, up in itertools.product(lowers, uppers):
        a_lo = lo.expr.coeff(v)       # > 0
        a_up = up.expr.coeff(v)       # < 0
        combined = lo.expr * (-a_up) + up.expr * a_lo
        out.append(Constraint(combined, GE))
    return System(out)


def _elimination_order(system: System, keep: Sequence[str] = ()) -> List[str]:
    """Variables to eliminate, cheapest (fewest lower*upper products) first."""
    keep_set = set(keep)
    candidates = [v for v in system.variables() if v not in keep_set]

    def cost(v: str) -> Tuple[int, str]:
        n_lo = n_up = n_eq = 0
        for c in system:
            a = c.expr.coeff(v)
            if a == 0:
                continue
            if c.kind == EQ:
                n_eq += 1
            elif a > 0:
                n_lo += 1
            else:
                n_up += 1
        # equality substitution is free-ish; otherwise pair count
        return ((0 if n_eq else n_lo * n_up), v)

    return sorted(candidates, key=cost)


def project(system: System, keep: Sequence[str]) -> System:
    """Project the polyhedron onto the ``keep`` variables (memoized)."""
    INSTR.count("fm.project.calls")
    key = (system_signature(system), frozenset(keep))
    hit = _PROJECT_MEMO.get(key)
    if hit is not None:
        INSTR.count("fm.project.memo_hits")
        return hit
    cur = system
    while True:
        if cur.has_contradiction:
            break
        todo = _elimination_order(cur, keep)
        if not todo:
            break
        cur = eliminate_variable(cur, todo[0])
    _memo_put(_PROJECT_MEMO, key, cur)
    return cur


def is_feasible(system: System) -> bool:
    """Rational feasibility by full elimination (memoized)."""
    INSTR.count("fm.feasible.calls")
    key = system_signature(system)
    hit = _FEASIBLE_MEMO.get(key)
    if hit is not None:
        INSTR.count("fm.feasible.memo_hits")
        return hit
    result = True
    cur = system
    while True:
        if cur.has_contradiction:
            result = False
            break
        if not cur.variables():
            break
        order = _elimination_order(cur)
        cur = eliminate_variable(cur, order[0])
    _memo_put(_FEASIBLE_MEMO, key, result)
    return result


def bounds_of(system: System, expr: LinExpr) -> Tuple[Union[Fraction, Inf], Union[Fraction, Inf]]:
    """Exact (inf, sup) of ``expr`` over the rational polyhedron.

    Returns (NEG_INF/POS_INF sentinels for unbounded directions).  If the
    system is infeasible raises ValueError.
    """
    if not is_feasible(system):
        raise ValueError("bounds_of on infeasible system")
    t = "__bound_t__"
    while t in system.variables() or expr.coeff(t) != 0:
        t += "_"
    sys_t = system.and_also(Constraint(LinExpr({t: 1}) - expr, EQ))
    proj = project(sys_t, [t])
    lo: Union[Fraction, Inf] = NEG_INF
    hi: Union[Fraction, Inf] = POS_INF
    for c in proj:
        a = c.expr.coeff(t)
        b = c.expr.const
        if a == 0:
            continue
        if c.kind == EQ:
            val = -b / a
            lo = max(lo, val) if lo != NEG_INF else val
            hi = min(hi, val) if hi != POS_INF else val
        elif a > 0:          # a t + b >= 0 -> t >= -b/a
            cand = -b / a
            lo = cand if lo == NEG_INF else max(lo, cand)
        else:                # t <= -b/a
            cand = -b / a
            hi = cand if hi == POS_INF else min(hi, cand)
    return lo, hi


def implies(system: System, constraint: Constraint) -> bool:
    """Does the polyhedron imply the constraint (over the rationals)?"""
    if not is_feasible(system):
        return True
    lo, hi = bounds_of(system, constraint.expr)
    if constraint.kind == GE:
        return lo != NEG_INF and lo >= 0
    return lo == hi == 0


def implied_equalities(system: System, candidates: Optional[Iterable[Tuple[str, str]]] = None
                       ) -> List[Tuple[str, str]]:
    """Pairs of variables (x, y) with x == y everywhere in the polyhedron."""
    names = system.variables()
    pairs = candidates if candidates is not None else itertools.combinations(names, 2)
    out: List[Tuple[str, str]] = []
    if not is_feasible(system):
        return out
    for x, y in pairs:
        lo, hi = bounds_of(system, LinExpr({x: 1, y: -1}))
        if lo == hi == 0:
            out.append((x, y))
    return out


def sample_point(system: System) -> Optional[Dict[str, Fraction]]:
    """A rational point satisfying the system, or None if infeasible.

    Classic FM back-substitution: eliminate variables one at a time recording
    the pre-elimination system; then assign values in reverse, picking a point
    in the (guaranteed non-empty) interval each variable is confined to.
    """
    stack: List[Tuple[str, System]] = []
    cur = system
    while True:
        if cur.has_contradiction:
            return None
        names = cur.variables()
        if not names:
            break
        v = _elimination_order(cur)[0]
        stack.append((v, cur))
        cur = eliminate_variable(cur, v)
    env: Dict[str, Fraction] = {}
    for v, sys_v in reversed(stack):
        lo: Union[Fraction, Inf] = NEG_INF
        hi: Union[Fraction, Inf] = POS_INF
        pinned: Optional[Fraction] = None
        for c in sys_v:
            a = c.expr.coeff(v)
            if a == 0:
                continue
            rest = c.expr - LinExpr({v: a})
            rv = rest.evaluate(env)
            if c.kind == EQ:
                pinned = -rv / a
            elif a > 0:
                cand = -rv / a
                lo = cand if lo == NEG_INF else max(lo, cand)
            else:
                cand = -rv / a
                hi = cand if hi == POS_INF else min(hi, cand)
        if pinned is not None:
            env[v] = pinned
            continue
        if lo == NEG_INF and hi == POS_INF:
            env[v] = Fraction(0)
        elif lo == NEG_INF:
            env[v] = hi - 1
        elif hi == POS_INF:
            env[v] = lo + 1 if lo < 0 else lo
        else:
            env[v] = (lo + hi) / 2
    # make sure unmentioned-but-requested variables exist
    return env

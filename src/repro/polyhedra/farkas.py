"""Affine form of Farkas' lemma.

The paper (Section 3.1, problem 2, citing Feautrier) computes the set of all
legal embedding functions by applying Farkas' lemma to each dependence class:
an affine function ``f`` is non-negative everywhere on a non-empty polyhedron
``P = {x : A_i x + b_i >= 0}`` iff it can be written

    f(x) ≡ λ₀ + Σᵢ λᵢ (Aᵢ x + bᵢ),      λ₀, λᵢ ≥ 0

(multipliers for equality constraints are unrestricted in sign).  Matching
coefficients of each variable turns this into a *linear* system over the
multipliers and any unknown coefficients of ``f`` — which is how the space of
legal embeddings becomes a polyhedron itself.

This module provides both directions:

- :func:`farkas_nonneg_system` builds that linear system for an ``f`` whose
  coefficients are symbolic unknowns (used to *synthesize* legal embeddings).
- :func:`farkas_certificate` checks a concrete ``f`` and returns multipliers
  (used in tests to cross-validate the Fourier–Motzkin legality decisions).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.polyhedra.fm import sample_point
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, EQ, GE


def farkas_nonneg_system(
    poly: System,
    f_coeffs: Mapping[str, LinExpr],
    f_const: LinExpr,
    lambda_prefix: str = "lam",
) -> System:
    """Linear constraints over multipliers (and any unknowns inside
    ``f_coeffs``/``f_const``) equivalent to: the affine function with
    coefficient ``f_coeffs[v]`` on each polyhedron variable ``v`` and constant
    ``f_const`` is non-negative everywhere on ``poly``.

    ``f_coeffs`` / ``f_const`` may be plain constants (wrapped in LinExpr) or
    expressions over unknown-coefficient variables; the returned system is
    over those unknowns plus fresh multiplier variables ``{prefix}0``,
    ``{prefix}1``, ….
    """
    poly_vars = poly.variables()
    constraints: List[Constraint] = []
    # multiplier λ0 (the affine constant)
    lam0 = f"{lambda_prefix}0"
    multipliers: List[Tuple[str, Constraint]] = []
    for idx, c in enumerate(poly.constraints, start=1):
        multipliers.append((f"{lambda_prefix}{idx}", c))

    # λ ≥ 0 for inequality multipliers and λ0
    constraints.append(Constraint(LinExpr({lam0: 1}), GE))
    for name, c in multipliers:
        if c.kind == GE:
            constraints.append(Constraint(LinExpr({name: 1}), GE))

    # coefficient matching per polyhedron variable
    for v in poly_vars:
        lhs = LinExpr.coerce(f_coeffs.get(v, LinExpr.constant(0)))
        rhs = LinExpr({name: c.expr.coeff(v) for name, c in multipliers})
        constraints.append(Constraint(lhs - rhs, EQ))
    # variables mentioned by f but absent from the polyhedron must have
    # coefficient zero (no multiplier can produce them)
    for v, coeff in f_coeffs.items():
        if v not in poly_vars:
            constraints.append(Constraint(LinExpr.coerce(coeff), EQ))

    # constant matching
    const_rhs = LinExpr({lam0: 1}) + LinExpr({name: c.expr.const for name, c in multipliers})
    constraints.append(Constraint(LinExpr.coerce(f_const) - const_rhs, EQ))
    return System(constraints)


def farkas_certificate(poly: System, f: LinExpr) -> Optional[Dict[str, Fraction]]:
    """Multipliers certifying ``f >= 0`` over ``poly``, or None if no
    certificate exists (over the rationals)."""
    coeffs = {v: LinExpr.constant(f.coeff(v)) for v in set(f.variables()) | set(poly.variables())}
    sys_ = farkas_nonneg_system(poly, coeffs, LinExpr.constant(f.const))
    return sample_point(sys_)


def legal_coefficient_space(
    poly: System,
    delta_coeffs: Mapping[str, LinExpr],
    delta_const: LinExpr,
) -> System:
    """The polyhedron of unknown embedding coefficients making the (single
    dimension) delta non-negative over the dependence class.

    Thin wrapper with a descriptive name: this is exactly "the set of all
    legal embedding functions" computation of paper Section 3.1 for one
    product-space dimension, before lexicographic weakening.
    """
    return farkas_nonneg_system(poly, delta_coeffs, delta_const, lambda_prefix="mu")

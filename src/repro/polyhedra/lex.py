"""Lexicographic order tests for vectors of affine functions over polyhedra.

The legality condition of the paper (Section 3.1, problem 2) is that for
every dependence class ``D`` with source instance ``i_s`` and destination
``i_d``, the difference of the embeddings ``Δ = F_d(i_d) - F_s(i_s)`` must be
lexicographically non-negative over all of ``D``.  The enumeration-direction
rule (Section 4.1) needs the set of dimensions that *can* be the first
strictly-positive component of ``Δ`` for some dependence pair.

All deltas have integer coefficients and dependence polyhedra contain the
integer points of interest, so ``Δ_k < 0`` is encoded as ``Δ_k <= -1`` and
``Δ_k > 0`` as ``Δ_k >= 1``; rational feasibility is used conservatively
(a rationally-feasible violation rejects the embedding even if no integer
witness exists — sound, possibly over-strict).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.polyhedra.fm import is_feasible
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, EQ, GE


def lex_nonneg(poly: System, deltas: Sequence[LinExpr]) -> bool:
    """True iff ``deltas ⪰ 0`` lexicographically at every point of ``poly``.

    A violation exists iff for some k: Δ₁=…=Δₖ₋₁=0 and Δₖ ≤ −1 is feasible.
    """
    prefix = poly
    if not is_feasible(prefix):
        return True
    for d in deltas:
        if is_feasible(prefix.and_also(Constraint(-d - 1, GE))):
            return False
        prefix = prefix.and_also(Constraint(d, EQ))
        if not is_feasible(prefix):
            return True
    return True


def lex_positive(poly: System, deltas: Sequence[LinExpr]) -> bool:
    """True iff ``deltas ≻ 0`` lexicographically at every point of ``poly``
    (i.e. non-negative, and never all-zero)."""
    if not lex_nonneg(poly, deltas):
        return False
    all_zero = poly
    for d in deltas:
        all_zero = all_zero.and_also(Constraint(d, EQ))
    return not is_feasible(all_zero)


def can_be_first_positive(poly: System, deltas: Sequence[LinExpr], k: int) -> bool:
    """Can dimension ``k`` be the first strictly-positive component of the
    delta vector for some dependence pair in ``poly``?"""
    sys_k = poly
    for d in deltas[:k]:
        sys_k = sys_k.and_also(Constraint(d, EQ))
    sys_k = sys_k.and_also(Constraint(deltas[k] - 1, GE))
    return is_feasible(sys_k)


def first_positive_dims(poly: System, deltas: Sequence[LinExpr]) -> Set[int]:
    """All dimensions that can be the satisfying (first positive) dimension
    for some pair in the dependence class.  Each such dimension must be
    enumerated in increasing order (paper Section 4.1, Enumeration
    Directions)."""
    out: Set[int] = set()
    prefix = poly
    if not is_feasible(prefix):
        return out
    for k, d in enumerate(deltas):
        if is_feasible(prefix.and_also(Constraint(d - 1, GE))):
            out.add(k)
        prefix = prefix.and_also(Constraint(d, EQ))
        if not is_feasible(prefix):
            break
    return out

"""Constraint systems (polyhedra) over named variables.

A :class:`System` is a conjunction of constraints ``expr >= 0`` / ``expr == 0``
with exact rational coefficients.  Dependence classes (paper Section 3,
``D (i_s, i_d)^T + d >= 0``) are represented this way, as are the derived
legality systems.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.polyhedra.linexpr import LinExpr

GE = "GE"  # expr >= 0
EQ = "EQ"  # expr == 0


class Constraint:
    """A single affine constraint ``expr (>=|==) 0``, kept in a normalized
    form (integer coefficients with gcd 1) so that duplicates hash equal."""

    __slots__ = ("expr", "kind")

    def __init__(self, expr: LinExpr, kind: str = GE):
        if kind not in (GE, EQ):
            raise ValueError(f"constraint kind must be GE or EQ, got {kind!r}")
        self.expr = _normalize(expr, kind)
        self.kind = kind

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    @property
    def is_trivial(self) -> bool:
        """Constant constraint that always holds."""
        if not self.expr.is_constant:
            return False
        if self.kind == GE:
            return self.expr.const >= 0
        return self.expr.const == 0

    @property
    def is_contradiction(self) -> bool:
        if not self.expr.is_constant:
            return False
        if self.kind == GE:
            return self.expr.const < 0
        return self.expr.const != 0

    def satisfied_by(self, env: Mapping[str, Fraction]) -> bool:
        v = self.expr.evaluate(env)
        return v >= 0 if self.kind == GE else v == 0

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def substitute(self, bindings: Mapping[str, LinExpr]) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.kind)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constraint)
            and self.kind == other.kind
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.expr))

    def __repr__(self) -> str:
        op = ">=" if self.kind == GE else "=="
        return f"{self.expr!r} {op} 0"


def _normalize(expr: LinExpr, kind: str) -> LinExpr:
    """Scale so all coefficients are integers with gcd 1.  For EQ also fix
    the sign of the leading coefficient, making x==0 and -x==0 identical."""
    denoms = [c.denominator for c in expr.coeffs.values()] + [expr.const.denominator]
    lcm = 1
    for d in denoms:
        g = _gcd(lcm, d)
        lcm = lcm // g * d
    scaled = expr * lcm
    numers = [abs(c.numerator) for c in scaled.coeffs.values()] + [abs(scaled.const.numerator)]
    numers = [n for n in numers if n]
    if numers:
        g = numers[0]
        for n in numers[1:]:
            g = _gcd(g, n)
        if g > 1:
            scaled = scaled * Fraction(1, g)
    if kind == EQ and scaled.coeffs:
        lead = scaled.coeffs[min(scaled.coeffs)]
        if lead < 0:
            scaled = scaled * -1
    return scaled


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a if a else 1


class System:
    """A conjunction of constraints; the polyhedron they define."""

    def __init__(self, constraints: Iterable[Constraint] = ()):  # noqa: D401
        self.constraints: List[Constraint] = []
        seen: Set[Constraint] = set()
        for c in constraints:
            if c.is_trivial:
                continue
            if c not in seen:
                seen.add(c)
                self.constraints.append(c)

    # -- construction helpers --------------------------------------------
    @staticmethod
    def of(*constraints: Constraint) -> "System":
        return System(constraints)

    def and_also(self, *constraints: Constraint) -> "System":
        return System(self.constraints + list(constraints))

    def conjoin(self, other: "System") -> "System":
        return System(self.constraints + other.constraints)

    # -- queries ------------------------------------------------------------
    def variables(self) -> Tuple[str, ...]:
        names: Set[str] = set()
        for c in self.constraints:
            names.update(c.variables())
        return tuple(sorted(names))

    @property
    def has_contradiction(self) -> bool:
        return any(c.is_contradiction for c in self.constraints)

    def satisfied_by(self, env: Mapping[str, Fraction]) -> bool:
        return all(c.satisfied_by(env) for c in self.constraints)

    def rename(self, mapping: Mapping[str, str]) -> "System":
        return System(c.rename(mapping) for c in self.constraints)

    def substitute(self, bindings: Mapping[str, LinExpr]) -> "System":
        return System(c.substitute(bindings) for c in self.constraints)

    def equalities(self) -> List[Constraint]:
        return [c for c in self.constraints if c.kind == EQ]

    def inequalities(self) -> List[Constraint]:
        return [c for c in self.constraints if c.kind == GE]

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __repr__(self) -> str:
        if not self.constraints:
            return "System{ true }"
        body = ", ".join(repr(c) for c in self.constraints)
        return f"System{{ {body} }}"


# -- convenience constraint builders ---------------------------------------

def ge(lhs, rhs) -> Constraint:
    """lhs >= rhs."""
    return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), GE)


def le(lhs, rhs) -> Constraint:
    """lhs <= rhs."""
    return Constraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs), GE)


def eq(lhs, rhs) -> Constraint:
    """lhs == rhs."""
    return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), EQ)


def gt(lhs, rhs) -> Constraint:
    """lhs >= rhs + 1 (strict, for integer points)."""
    return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs) - 1, GE)


def lt(lhs, rhs) -> Constraint:
    """lhs <= rhs - 1 (strict, for integer points)."""
    return Constraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs) - 1, GE)

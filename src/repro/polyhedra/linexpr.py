"""Affine (linear + constant) expressions over named variables, exact.

``LinExpr`` is an immutable mapping ``{var_name: Fraction}`` plus a rational
constant.  Variable names are arbitrary strings; the IR uses qualified names
like ``"S2.i"`` (iteration variable ``i`` of statement ``S2``) and
``"S2.A.r"`` (row data axis of the reference to ``A`` in ``S2``) so that
expressions from different statements can live in one system.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Coeffish = Union[int, Fraction]


def _frac(x: Coeffish) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    raise TypeError(f"affine coefficients must be int/Fraction, got {type(x).__name__}")


class LinExpr:
    """Immutable affine expression ``sum(coeffs[v] * v) + const``."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Mapping[str, Coeffish] = (), const: Coeffish = 0):
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        cleaned: Dict[str, Fraction] = {}
        for k, v in items:
            fv = _frac(v)
            if fv != 0:
                cleaned[k] = fv
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "const", _frac(const))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, *a):  # immutability
        raise AttributeError("LinExpr is immutable")

    def __reduce__(self):
        # pickle via the constructor: the default slot protocol would
        # setattr() on load, which immutability forbids
        return (LinExpr, (self.coeffs, self.const))

    # -- constructors ----------------------------------------------------
    @staticmethod
    def variable(name: str) -> "LinExpr":
        return LinExpr({name: 1})

    @staticmethod
    def constant(c: Coeffish) -> "LinExpr":
        return LinExpr({}, c)

    @staticmethod
    def coerce(x: Union["LinExpr", int, Fraction, str]) -> "LinExpr":
        if isinstance(x, LinExpr):
            return x
        if isinstance(x, (int, Fraction)):
            return LinExpr.constant(x)
        if isinstance(x, str):
            return LinExpr.variable(x)
        raise TypeError(f"cannot coerce {type(x).__name__} to LinExpr")

    # -- queries ----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    def coeff(self, name: str) -> Fraction:
        return self.coeffs.get(name, Fraction(0))

    def evaluate(self, env: Mapping[str, Coeffish]) -> Fraction:
        total = self.const
        for k, c in self.coeffs.items():
            if k not in env:
                raise KeyError(f"no value for variable {k!r}")
            total += c * _frac(env[k])
        return total

    # -- algebra ----------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for k, v in other.coeffs.items():
            coeffs[k] = coeffs.get(k, Fraction(0)) + v
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.coerce(other) - self

    def __mul__(self, scalar: Coeffish) -> "LinExpr":
        s = _frac(scalar)
        return LinExpr({k: v * s for k, v in self.coeffs.items()}, self.const * s)

    __rmul__ = __mul__

    def substitute(self, bindings: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace variables with affine expressions."""
        out = LinExpr.constant(self.const)
        for k, c in self.coeffs.items():
            if k in bindings:
                out = out + LinExpr.coerce(bindings[k]) * c
            else:
                out = out + LinExpr({k: c})
        return out

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        return LinExpr({mapping.get(k, k): v for k, v in self.coeffs.items()}, self.const)

    # -- protocol ----------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((tuple(sorted(self.coeffs.items())), self.const))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        parts = []
        for k in sorted(self.coeffs):
            c = self.coeffs[k]
            if c == 1:
                parts.append(f"+ {k}")
            elif c == -1:
                parts.append(f"- {k}")
            elif c > 0:
                parts.append(f"+ {c}*{k}")
            else:
                parts.append(f"- {-c}*{k}")
        if self.const != 0 or not parts:
            parts.append(f"+ {self.const}" if self.const >= 0 else f"- {-self.const}")
        s = " ".join(parts)
        return s[2:] if s.startswith("+ ") else ("-" + s[2:] if s.startswith("- ") else s)


def var(name: str) -> LinExpr:
    """Shorthand for a single-variable expression."""
    return LinExpr.variable(name)


def const(c: Coeffish) -> LinExpr:
    """Shorthand for a constant expression."""
    return LinExpr.constant(c)


def zero() -> LinExpr:
    return LinExpr.constant(0)

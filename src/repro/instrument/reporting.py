"""Rendering of instrumentation registries as human-readable reports."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument import Instrumentation


def _format_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:9.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:9.3f} ms"
    return f"{s * 1e6:9.1f} us"


def _grouped(names: List[str]) -> List[str]:
    """Sort names by (namespace, name) so related counters sit together."""
    return sorted(names, key=lambda n: (n.split(".", 1)[0], n))


def render_report(instr: "Instrumentation") -> str:
    """An aligned two-section report of all counters and timers."""
    # one merged snapshot: the views are recomputed across thread shards on
    # every attribute access, so read them exactly once
    snap = instr.snapshot()
    timers, counters = snap["timers"], snap["counters"]
    lines: List[str] = ["== repro pipeline instrumentation =="]
    if timers:
        lines.append("-- phase timers --")
        width = max(len(n) for n in timers)
        for name in _grouped(list(timers)):
            lines.append(f"  {name:<{width}s}  {_format_seconds(timers[name])}")
    if counters:
        lines.append("-- counters --")
        width = max(len(n) for n in counters)
        for name in _grouped(list(counters)):
            lines.append(f"  {name:<{width}s}  {counters[name]:>12d}")
    if len(lines) == 1:
        lines.append("  (no activity recorded)")
    return "\n".join(lines)


def compare_snapshots(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
    """Per-key deltas between two :meth:`Instrumentation.snapshot` values;
    keys with a zero delta are dropped."""
    out: Dict[str, Dict] = {"counters": {}, "timers": {}}
    for section in ("counters", "timers"):
        b = before.get(section, {})
        for name, value in after.get(section, {}).items():
            delta = value - b.get(name, 0)
            if delta:
                out[section][name] = delta
    return out

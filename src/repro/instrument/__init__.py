"""Pipeline instrumentation: phase timers and counters for the compiler.

Every stage of the enumerate-estimate-select pipeline (candidate
generation, Fourier-Motzkin legality, plan lowering, cost ranking, code
generation) and every cache layer (compilation cache, FM memo, pair-
analysis memo) reports into one process-wide :class:`Instrumentation`
registry.  Collection is always on — the counters are plain dictionary
increments and the timers a pair of ``perf_counter`` calls per phase, so
the overhead is negligible next to the exact-rational polyhedral work they
measure.

**Thread model** — the registry is safe under concurrent compilation
(:func:`repro.core.service.compile_many` drives the pipeline from a
worker pool).  Each thread accumulates into its own private shard
(``threading.local``), so the hot path stays a lock-free dictionary
increment with no lost updates; readers (:meth:`~Instrumentation.get`,
:meth:`~Instrumentation.snapshot`, the report) merge the shards of every
thread that ever reported, including threads that have since exited.
:meth:`~Instrumentation.thread_snapshot` exposes the calling thread's
shard alone, which the search driver diffs to attribute polyhedral work
to one search even while sibling threads compile concurrently.

Set ``REPRO_TRACE=1`` in the environment to get a rendered report on
interpreter exit (and ``repro.instrument.report()`` returns the same
rendering on demand at any point).

Counter namespaces used by the compiler:

- ``search.*``          — driver-level candidate statistics
- ``fm.*``              — Fourier-Motzkin eliminations and memo traffic
- ``pair.*``            — per-(dependence, copy pair) legality memo
- ``cache.*``           — compilation-cache hits/misses/invalidations
- ``codegen.*``         — specialized Python source generation
- ``plan.*``            — plan lowering
- ``native.*``          — C backend: compiles, .so-cache traffic,
                          single-flight coalescing, fallbacks
- ``native.tier.*``     — optimization tiers: successful binds per tier
                          (``native.tier.tiled`` / ``.fast`` /
                          ``.none``), demotions when the toolchain
                          cannot honor a request
                          (``native.tier.demotions`` aggregate,
                          ``native.tier.demotion.no_toolchain`` /
                          ``.simd_probe`` by reason)
- ``native.dispatch.*`` — NativeKernel call paths: prepared-argument
                          fast-path hits (``native.dispatch.prepared``)
- ``backend.run.*``     — per-call dispatch (native / python / interp)
- ``service.*``         — compile_many batch driver traffic
- ``daemon.*``          — compilation daemon: requests by op, handle-LRU
                          and payload-store traffic, request coalescing,
                          queue-full/draining rejections, timeouts,
                          malformed frames, client disconnects
- ``client.*``          — ServiceClient: connects/retries, digest sends
                          and transparent payload re-uploads
- ``env.*``             — REPRO_* environment variables that failed to
                          parse and fell back to their defaults
- ``solver.*``          — SolverContext setup/iterate phase split,
                          iteration counts, fast-path fallbacks
- ``blas.handle.*``     — functional-API calls served by registered
                          kernel handles
- ``format.convert.*``  — data-plane conversions: the ``format.convert``
                          phase timer, per-route counters (``identity`` /
                          ``fastpath`` / ``via_coo``) and per ordered
                          format pair (``format.convert.csr->ell``)
- ``select.*``          — format selection: the shared one-time COO
                          extraction (``select.extract`` phase,
                          ``select.candidates`` counter), auto-mode
                          entries (``select.auto``)
- ``autotune.*``        — structure-adaptive autotuning: feature
                          extraction and measurement phases
                          (``autotune.features`` / ``autotune.measure``),
                          tunes performed, winner-cache traffic
                          (``autotune.cache.lookups`` /
                          ``.hits.memory`` / ``.hits.disk`` /
                          ``.misses``), single-flight coalescing
                          (``autotune.coalesced``), micro-benchmark runs
                          (``autotune.microbench.runs``), cached-winner
                          replays and replay failures
- ``solver.split``      — SolverContext triangular-split phase timer
- ``solver.normal``     — SolverContext normal-equation product
                          (``A^T A`` / ``A A^T``) construction phase
- ``spgemm.*``          — sparse×sparse products: phase timers for the
                          two-pass tiers (``spgemm.symbolic`` /
                          ``spgemm.numeric`` for the vectorized CSR
                          path, ``spgemm.twopass`` for the specialized
                          accumulator kernels, ``spgemm.enumerate`` for
                          the generic any-pair route), call and tier
                          counters (``spgemm.calls``,
                          ``spgemm.tier.native`` / ``.vectorized`` /
                          ``.specialized`` / ``.generic``, plus
                          ``spgemm.tier.native_fallbacks`` when the
                          native numeric kernel is unavailable and the
                          call demotes to vectorized), output-format
                          selections
                          (``spgemm.output_select``) and packing
                          fallbacks to CSR (``spgemm.output_fallbacks``)
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple


def _copy_live(d: Dict) -> Dict:
    """Copy a dict another thread may be growing lock-free.  Growth can
    make the copy raise ``RuntimeError`` (size changed mid-iteration);
    counters only ever gain keys, so retrying converges immediately."""
    for _ in range(8):
        try:
            return dict(d)
        except RuntimeError:
            continue
    return {k: d[k] for k in list(d.keys()) if k in d}


class Instrumentation:
    """A process-wide registry of named counters and accumulated timers,
    sharded per thread for lock-free writes (see module docstring)."""

    __slots__ = ("_lock", "_tls", "_shards", "_base_counters", "_base_timers")

    def __init__(self):
        self._lock = threading.Lock()
        self._tls = threading.local()
        # live shards: (owning thread, its counters, its timers); shards of
        # finished threads are folded into the base dicts opportunistically
        self._shards = []
        self._base_counters: Dict[str, int] = {}
        self._base_timers: Dict[str, float] = {}

    # -- sharding ---------------------------------------------------------
    def _shard(self) -> Tuple[Dict[str, int], Dict[str, float]]:
        try:
            return self._tls.shard
        except AttributeError:
            counters: Dict[str, int] = {}
            timers: Dict[str, float] = {}
            self._tls.shard = (counters, timers)
            with self._lock:
                self._compact_locked()
                self._shards.append(
                    (threading.current_thread(), counters, timers))
            return self._tls.shard

    def _compact_locked(self) -> None:
        """Fold shards whose owning thread has finished into the base
        dicts (a finished thread can never write again)."""
        cur = threading.current_thread()
        live = []
        for t, counters, timers in self._shards:
            if t is cur or t.is_alive():
                live.append((t, counters, timers))
                continue
            for k, v in counters.items():
                self._base_counters[k] = self._base_counters.get(k, 0) + v
            for k, v in timers.items():
                self._base_timers[k] = self._base_timers.get(k, 0.0) + v
        self._shards[:] = live

    def _merged(self) -> Tuple[Dict[str, int], Dict[str, float]]:
        with self._lock:
            counters = dict(self._base_counters)
            timers = dict(self._base_timers)
            shards = [(c, t) for _t, c, t in self._shards]
        for c, t in shards:
            for k, v in _copy_live(c).items():
                counters[k] = counters.get(k, 0) + v
            for k, v in _copy_live(t).items():
                timers[k] = timers.get(k, 0.0) + v
        return counters, timers

    # -- counters ---------------------------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        """Merged view across every thread's shard."""
        return self._merged()[0]

    @property
    def timers(self) -> Dict[str, float]:
        """Merged view across every thread's shard."""
        return self._merged()[1]

    def count(self, name: str, n: int = 1) -> None:
        c = self._shard()[0]
        c[name] = c.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._merged()[0].get(name, 0)

    # -- timers -----------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        t = self._shard()[1]
        t[name] = t.get(name, 0.0) + seconds

    def time(self, name: str) -> float:
        return self._merged()[1].get(name, 0.0)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the enclosed block under
        ``name`` (re-entrant: nested phases with distinct names nest
        naturally; the same name accumulates)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- management -------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A point-in-time merged copy ``{"counters": {...}, "timers":
        {...}}`` — diff two snapshots to attribute work to one pipeline
        run (use :meth:`thread_snapshot` when other threads are active)."""
        counters, timers = self._merged()
        return {"counters": counters, "timers": timers}

    def thread_snapshot(self) -> Dict[str, Dict]:
        """Like :meth:`snapshot` but covering only the calling thread's
        accumulation, so deltas are immune to concurrent siblings."""
        counters, timers = self._shard()
        return {"counters": dict(counters), "timers": dict(timers)}

    def reset(self) -> None:
        """Zero every counter and timer, including other threads' shards.
        (Resetting while other threads are mid-increment is inherently
        approximate; tests reset at quiescent points.)"""
        with self._lock:
            self._base_counters.clear()
            self._base_timers.clear()
            for _t, counters, timers in self._shards:
                counters.clear()
                timers.clear()


#: the process-wide registry every compiler stage reports into
INSTR = Instrumentation()

# convenience module-level aliases
count = INSTR.count
counter = INSTR.get
add_time = INSTR.add_time
phase = INSTR.phase
snapshot = INSTR.snapshot
thread_snapshot = INSTR.thread_snapshot
reset = INSTR.reset


def trace_enabled() -> bool:
    """Is ``REPRO_TRACE`` set to a truthy value?"""
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )


def report() -> str:
    """Render the current counters and timers as an aligned text report."""
    from repro.instrument.reporting import render_report

    return render_report(INSTR)


def _atexit_report() -> None:  # pragma: no cover - exercised via subprocess
    if INSTR.counters or INSTR.timers:
        print(report(), file=sys.stderr)


if trace_enabled():  # pragma: no cover - exercised via subprocess
    atexit.register(_atexit_report)

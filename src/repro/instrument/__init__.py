"""Pipeline instrumentation: phase timers and counters for the compiler.

Every stage of the enumerate-estimate-select pipeline (candidate
generation, Fourier-Motzkin legality, plan lowering, cost ranking, code
generation) and every cache layer (compilation cache, FM memo, pair-
analysis memo) reports into one process-wide :class:`Instrumentation`
registry.  Collection is always on — the counters are plain dictionary
increments and the timers a pair of ``perf_counter`` calls per phase, so
the overhead is negligible next to the exact-rational polyhedral work they
measure.

Set ``REPRO_TRACE=1`` in the environment to get a rendered report on
interpreter exit (and ``repro.instrument.report()`` returns the same
rendering on demand at any point).

Counter namespaces used by the compiler:

- ``search.*``          — driver-level candidate statistics
- ``fm.*``              — Fourier-Motzkin eliminations and memo traffic
- ``pair.*``            — per-(dependence, copy pair) legality memo
- ``cache.*``           — compilation-cache hits/misses/invalidations
- ``codegen.*``         — specialized Python source generation
- ``plan.*``            — plan lowering
- ``native.*``          — C backend: compiles, .so-cache traffic, fallbacks
- ``backend.run.*``     — per-call dispatch (native / python / interp)
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Instrumentation:
    """A process-wide registry of named counters and accumulated timers."""

    __slots__ = ("counters", "timers")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # -- counters ---------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers -----------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def time(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the enclosed block under
        ``name`` (re-entrant: nested phases with distinct names nest
        naturally; the same name accumulates)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- management -------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A point-in-time copy ``{"counters": {...}, "timers": {...}}`` —
        diff two snapshots to attribute work to one pipeline run."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()


#: the process-wide registry every compiler stage reports into
INSTR = Instrumentation()

# convenience module-level aliases
count = INSTR.count
counter = INSTR.get
add_time = INSTR.add_time
phase = INSTR.phase
snapshot = INSTR.snapshot
reset = INSTR.reset


def trace_enabled() -> bool:
    """Is ``REPRO_TRACE`` set to a truthy value?"""
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )


def report() -> str:
    """Render the current counters and timers as an aligned text report."""
    from repro.instrument.reporting import render_report

    return render_report(INSTR)


def _atexit_report() -> None:  # pragma: no cover - exercised via subprocess
    if INSTR.counters or INSTR.timers:
        print(report(), file=sys.stderr)


if trace_enabled():  # pragma: no cover - exercised via subprocess
    atexit.register(_atexit_report)

"""Symmetric storage (SYM): only the lower triangle is stored; the upper
triangle exists through the transpose map.

Index structure — an aggregation of the stored triangle and its mirrored
image, exercising Union and Map together:

    (r -> c -> v)                                  [stored: c <= r]
  U map{cc |-> r, rr |-> c : rr -> cc -> v}        [mirror: strictly lower]

A statement touching a SYM matrix is split into two copies (paper
Section 4): one walks the stored lower-triangular CSR, the other walks the
same arrays with the row/column roles swapped (skipping the diagonal so
elements are not visited twice).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    PathRuntime,
    SparseFormat,
    coo_contract,
    coo_dedup_sort,
    csr_rowptr,
)
from repro.formats.views import (
    Axis,
    BINARY,
    INCREASING,
    MapTerm,
    Nest,
    Term,
    Union,
    Value,
    interval_axis,
)
from repro.polyhedra.linexpr import LinExpr


class SymLowerRuntime(PathRuntime):
    """The stored triangle, walked as CSR rows."""

    def __init__(self, fmt: "SymMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        if step == 0:
            for r in range(fmt.nrows):
                yield (r,), r
        else:
            (r,) = prefix
            for jj in range(int(fmt.rowptr[r]), int(fmt.rowptr[r + 1])):
                yield (int(fmt.colind[jj]),), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        fmt = self.fmt
        if step == 0:
            (r,) = keys
            return r if 0 <= r < fmt.nrows else None
        (r,) = prefix
        (c,) = keys
        lo, hi = int(fmt.rowptr[r]), int(fmt.rowptr[r + 1])
        jj = int(np.searchsorted(fmt.colind[lo:hi], c)) + lo
        if jj < hi and fmt.colind[jj] == c:
            return jj
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class SymMirrorRuntime(PathRuntime):
    """The mirrored image: same arrays, strictly-lower entries only (the
    diagonal belongs to the stored branch), axes named (rr, cc) with the
    map swapping them into logical coordinates."""

    def __init__(self, fmt: "SymMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        if step == 0:
            for rr in range(fmt.nrows):
                yield (rr,), rr
        else:
            (rr,) = prefix
            for jj in range(int(fmt.rowptr[rr]), int(fmt.rowptr[rr + 1])):
                cc = int(fmt.colind[jj])
                if cc != rr:  # strictly lower only
                    yield (cc,), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        fmt = self.fmt
        if step == 0:
            (rr,) = keys
            return rr if 0 <= rr < fmt.nrows else None
        (rr,) = prefix
        (cc,) = keys
        if cc == rr:
            return None
        lo, hi = int(fmt.rowptr[rr]), int(fmt.rowptr[rr + 1])
        jj = int(np.searchsorted(fmt.colind[lo:hi], cc)) + lo
        if jj < hi and fmt.colind[jj] == cc:
            return jj
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class SymMatrix(SparseFormat):
    """Symmetric matrix stored as the CSR of its lower triangle."""

    format_name = "sym"

    def __init__(self, rowptr: np.ndarray, colind: np.ndarray, values: np.ndarray,
                 shape: Tuple[int, int]):
        super().__init__(shape)
        if self.nrows != self.ncols:
            raise ValueError("symmetric storage requires a square matrix")
        self.rowptr = np.asarray(rowptr, dtype=np.int64)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.rowptr.size != self.nrows + 1:
            raise ValueError("rowptr must have nrows+1 entries")
        rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))
        if np.any(self.colind > rows):
            raise ValueError("symmetric storage keeps only the lower triangle")

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        """Logical non-zeros (mirrored entries counted)."""
        rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))
        off = int(np.count_nonzero(rows != self.colind))
        return int(self.values.size + off)

    @property
    def stored_nnz(self) -> int:
        return int(self.values.size)

    def _find(self, r: int, c: int) -> Optional[int]:
        if c > r:
            r, c = c, r
        lo, hi = int(self.rowptr[r]), int(self.rowptr[r + 1])
        jj = int(np.searchsorted(self.colind[lo:hi], c)) + lo
        if jj < hi and self.colind[jj] == c:
            return jj
        return None

    def get(self, r: int, c: int) -> float:
        jj = self._find(r, c)
        return float(self.values[jj]) if jj is not None else 0.0

    def set(self, r: int, c: int, v: float) -> None:
        jj = self._find(r, c)
        if jj is None:
            raise KeyError(f"({r},{c}) is not stored (fill is not supported)")
        self.values[jj] = v

    def to_coo_arrays(self):
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64),
                         np.diff(self.rowptr))
        off = rows != self.colind
        return coo_contract(np.concatenate([rows, self.colind[off]]),
                            np.concatenate([self.colind, rows[off]]),
                            np.concatenate([self.values, self.values[off]]))

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "SymMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "SymMatrix":
        # symmetry check without the per-element dictionary: look every
        # entry's transposed key up in the (sorted, unique) key array; a
        # missing transpose compares against 0.0, exactly like the loop
        # oracle's dict.get default
        m, n = shape
        keys = rows * n + cols
        kt = cols * n + rows
        if keys.size:
            pos = np.minimum(np.searchsorted(keys, kt), keys.size - 1)
            found = keys[pos] == kt
            tvals = np.where(found, vals[pos], 0.0)
            bad = np.abs(tvals - vals) > 1e-12
            if np.any(bad):
                i = int(np.argmax(bad))
                raise ValueError(
                    f"matrix is not symmetric at ({int(rows[i])},{int(cols[i])})")
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
        return cls(csr_rowptr(rows, m), cols, vals, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "SymMatrix":
        """Loop oracle: dictionary symmetry check then per-element row
        counting (the pre-vectorization construction)."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        dense_check = {}
        for r, c, v in zip(rows, cols, vals):
            dense_check[(int(r), int(c))] = float(v)
        for (r, c), v in dense_check.items():
            if abs(dense_check.get((c, r), 0.0) - v) > 1e-12:
                raise ValueError(f"matrix is not symmetric at ({r},{c})")
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
        m = shape[0]
        rowptr = np.zeros(m + 1, dtype=np.int64)
        for r in rows:
            rowptr[int(r) + 1] += 1
        np.cumsum(rowptr, out=rowptr)
        return cls(rowptr, cols, vals, shape)

    def _reference_to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for r in range(self.nrows):
            for jj in range(int(self.rowptr[r]), int(self.rowptr[r + 1])):
                rows.append(r)
                cols.append(int(self.colind[jj]))
                vals.append(float(self.values[jj]))
        n_stored = len(rows)
        for i in range(n_stored):
            if rows[i] != cols[i]:
                rows.append(cols[i])
                cols.append(rows[i])
                vals.append(vals[i])
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        stored = Nest(interval_axis("r"),
                      Nest(Axis("c", INCREASING, BINARY), Value()))
        mirror = MapTerm(
            {"r": LinExpr.variable("cc"), "c": LinExpr.variable("rr")},
            Nest(interval_axis("rr"),
                 Nest(Axis("cc", INCREASING, BINARY), Value())),
        )
        return Union(stored, mirror)

    def path_ids(self) -> Optional[List[str]]:
        return ["lower", "mirror"]

    def runtime(self, path_id: str) -> PathRuntime:
        if path_id == "lower":
            return SymLowerRuntime(self, self.path(path_id))
        if path_id == "mirror":
            return SymMirrorRuntime(self, self.path(path_id))
        raise KeyError(path_id)

    def axis_range(self, axis_name: str) -> Optional[Tuple[int, int]]:
        if axis_name in ("rr", "cc"):
            return (0, self.nrows)
        return super().axis_range(axis_name)

    def axis_total(self, axis_name: str) -> Optional[Tuple[int, int]]:
        if axis_name in ("r", "rr"):
            return (0, self.nrows)
        return None

    def bounds(self) -> Optional[object]:
        # the stored branch satisfies c <= r; the mirror strictly c > r —
        # per-branch constraints are carried by the paths' subs and axis
        # ranges; a whole-matrix annotation would be wrong, so none is set
        return getattr(self, "_bounds", None)

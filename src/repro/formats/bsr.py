"""Block Sparse Row storage (BSR): dense s x s blocks on a CSR skeleton.

Index structure::

    map{s*rb + ri |-> r, s*cb + ci |-> c :
        rb -> cb -> (ri x ci) -> v}

The affine map rule of the paper's grammar covers blocking directly: the
logical row decomposes as ``r = s*rb + ri`` with the block row ``rb`` an
interval, stored block columns ``cb`` sorted within a block row, and the
within-block coordinates a dense cross product.

The matrix dimensions must be multiples of the block size (generators pad).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import PathRuntime, SparseFormat, coo_contract, coo_dedup_sort
from repro.formats.views import (
    Axis,
    BINARY,
    Cross,
    INCREASING,
    MapTerm,
    Nest,
    Term,
    Value,
    interval_axis,
)
from repro.polyhedra.linexpr import LinExpr


class BsrRuntime(PathRuntime):
    def __init__(self, fmt: "BsrMatrix", path, inner_order: Tuple[str, str]):
        self.fmt = fmt
        self.path = path
        self.inner_order = inner_order  # ("ri","ci") or ("ci","ri")

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        if step == 0:
            for rb in range(fmt.block_rows):
                yield (rb,), rb
        elif step == 1:
            (rb,) = prefix
            for kk in range(int(fmt.indptr[rb]), int(fmt.indptr[rb + 1])):
                yield (int(fmt.blockind[kk]),), kk
        else:
            for v in range(fmt.block_size):
                yield (v,), v

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        fmt = self.fmt
        if step == 0:
            (rb,) = keys
            return rb if 0 <= rb < fmt.block_rows else None
        if step == 1:
            (rb,) = prefix
            (cb,) = keys
            lo, hi = int(fmt.indptr[rb]), int(fmt.indptr[rb + 1])
            kk = int(np.searchsorted(fmt.blockind[lo:hi], cb)) + lo
            if kk < hi and fmt.blockind[kk] == cb:
                return kk
            return None
        (v,) = keys
        return v if 0 <= v < fmt.block_size else None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        if step == 0:
            return (0, self.fmt.block_rows)
        if step >= 2:
            return (0, self.fmt.block_size)
        return None

    def _block_xy(self, prefix: Tuple) -> Tuple[int, int, int]:
        kk = prefix[1]
        inner = dict(zip(self.inner_order, prefix[2:]))
        return kk, inner["ri"], inner["ci"]

    def get(self, prefix: Tuple) -> float:
        kk, ri, ci = self._block_xy(prefix)
        return float(self.fmt.data[kk, ri, ci])

    def set(self, prefix: Tuple, value: float) -> None:
        kk, ri, ci = self._block_xy(prefix)
        self.fmt.data[kk, ri, ci] = value


class BsrMatrix(SparseFormat):
    """BSR: ``indptr`` (block_rows+1), ``blockind`` (nblocks, sorted within
    a block row), ``data`` (nblocks x s x s)."""

    format_name = "bsr"

    def __init__(self, indptr: np.ndarray, blockind: np.ndarray, data: np.ndarray,
                 block_size: int, shape: Tuple[int, int]):
        super().__init__(shape)
        self.block_size = int(block_size)
        if self.nrows % self.block_size or self.ncols % self.block_size:
            raise ValueError("matrix dimensions must be multiples of the block size")
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.blockind = np.asarray(blockind, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.size != self.block_rows + 1:
            raise ValueError("indptr must have block_rows+1 entries")
        if self.data.shape != (self.blockind.size, self.block_size, self.block_size):
            raise ValueError("data must be (nblocks, s, s)")

    @property
    def block_rows(self) -> int:
        return self.nrows // self.block_size

    @property
    def block_cols(self) -> int:
        return self.ncols // self.block_size

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored entries, counting explicit in-block zeros (the format
        computes with them, so benchmarks must count them)."""
        return int(self.data.size)

    def _find_block(self, rb: int, cb: int) -> Optional[int]:
        lo, hi = int(self.indptr[rb]), int(self.indptr[rb + 1])
        kk = int(np.searchsorted(self.blockind[lo:hi], cb)) + lo
        if kk < hi and self.blockind[kk] == cb:
            return kk
        return None

    def get(self, r: int, c: int) -> float:
        s = self.block_size
        kk = self._find_block(r // s, c // s)
        return float(self.data[kk, r % s, c % s]) if kk is not None else 0.0

    def set(self, r: int, c: int, v: float) -> None:
        s = self.block_size
        kk = self._find_block(r // s, c // s)
        if kk is None:
            raise KeyError(f"({r},{c}) is not in a stored block")
        self.data[kk, r % s, c % s] = v

    def to_coo_arrays(self):
        # broadcast block coordinates over the (nblocks, s, s) data cube;
        # raveling C-order reproduces the (block, ri, ci) loop-nest order
        s = self.block_size
        rb = np.repeat(np.arange(self.block_rows, dtype=np.int64),
                       np.diff(self.indptr))
        within = np.arange(s, dtype=np.int64)
        rows = (rb[:, None, None] * s + within[None, :, None]
                + np.zeros((1, 1, s), dtype=np.int64))
        cols = (self.blockind[:, None, None] * s + within[None, None, :]
                + np.zeros((1, s, 1), dtype=np.int64))
        return coo_contract(rows.reshape(-1), cols.reshape(-1),
                            self.data.reshape(-1).copy())

    def to_dense(self) -> np.ndarray:
        # view the dense output as (block_rows, s, block_cols, s) and drop
        # every stored block in with one advanced-indexing assignment
        s = self.block_size
        out = np.zeros(self.shape)
        rb = np.repeat(np.arange(self.block_rows, dtype=np.int64),
                       np.diff(self.indptr))
        out4 = out.reshape(self.block_rows, s, self.block_cols, s)
        out4[rb, :, self.blockind, :] = self.data
        return out

    @classmethod
    def from_coo(cls, rows, cols, vals, shape, block_size: int = 2) -> "BsrMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape,
                                       block_size=block_size)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape,
                            block_size: int = 2) -> "BsrMatrix":
        # block ids come from np.unique; the inverse map replaces the
        # per-element dictionary lookup, so the fill is one 3-D scatter
        s = block_size
        m, n = shape
        if m % s or n % s:
            raise ValueError("matrix dimensions must be multiples of the block size")
        rb, cb = rows // s, cols // s
        keys = rb * (n // s) + cb
        uniq, inverse = np.unique(keys, return_inverse=True)
        data = np.zeros((uniq.size, s, s))
        data[inverse, rows % s, cols % s] = vals
        indptr = np.zeros(m // s + 1, dtype=np.int64)
        np.add.at(indptr[1:], (uniq // (n // s)).astype(np.int64), 1)
        np.cumsum(indptr, out=indptr)
        blockind = (uniq % (n // s)).astype(np.int64)
        return cls(indptr, blockind, data, s, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape,
                            block_size: int = 2) -> "BsrMatrix":
        """Loop oracle: per-element dictionary block lookup (the
        pre-vectorization construction)."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        s = block_size
        m, n = shape
        if m % s or n % s:
            raise ValueError("matrix dimensions must be multiples of the block size")
        rb, cb = rows // s, cols // s
        keys = rb * (n // s) + cb
        uniq = np.unique(keys)
        block_of = {int(k): i for i, k in enumerate(uniq)}
        data = np.zeros((uniq.size, s, s))
        for r, c, v in zip(rows, cols, vals):
            kk = block_of[int((r // s) * (n // s) + (c // s))]
            data[kk, r % s, c % s] = v
        indptr = np.zeros(m // s + 1, dtype=np.int64)
        np.add.at(indptr[1:], (uniq // (n // s)).astype(np.int64), 1)
        np.cumsum(indptr, out=indptr)
        blockind = (uniq % (n // s)).astype(np.int64)
        return cls(indptr, blockind, data, s, shape)

    def _reference_to_coo_arrays(self):
        s = self.block_size
        rows, cols, vals = [], [], []
        for rb in range(self.block_rows):
            for kk in range(int(self.indptr[rb]), int(self.indptr[rb + 1])):
                cb = int(self.blockind[kk])
                for ri in range(s):
                    for ci in range(s):
                        rows.append(rb * s + ri)
                        cols.append(cb * s + ci)
                        vals.append(float(self.data[kk, ri, ci]))
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals))

    def _reference_to_dense(self) -> np.ndarray:
        """Loop oracle for :meth:`to_dense`: block-at-a-time placement."""
        out = np.zeros(self.shape)
        s = self.block_size
        for rb in range(self.block_rows):
            for kk in range(int(self.indptr[rb]), int(self.indptr[rb + 1])):
                cb = int(self.blockind[kk])
                out[rb * s:(rb + 1) * s, cb * s:(cb + 1) * s] = self.data[kk]
        return out

    @classmethod
    def from_dense(cls, a: np.ndarray, block_size: int = 2) -> "BsrMatrix":
        a = np.asarray(a)
        rows, cols = np.nonzero(a)
        return cls.from_coo(rows, cols, a[rows, cols].astype(float), a.shape, block_size)

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        s = self.block_size
        rb = LinExpr.variable("rb")
        ri = LinExpr.variable("ri")
        cb = LinExpr.variable("cb")
        ci = LinExpr.variable("ci")
        return MapTerm(
            {"r": rb * s + ri, "c": cb * s + ci},
            Nest(
                interval_axis("rb"),
                Nest(
                    Axis("cb", INCREASING, BINARY),
                    Cross([interval_axis("ri"), interval_axis("ci")], Value()),
                ),
            ),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["rows_rc", "rows_cr"]

    def runtime(self, path_id: str) -> PathRuntime:
        order = ("ri", "ci") if path_id == "rows_rc" else ("ci", "ri")
        return BsrRuntime(self, self.path(path_id), order)

    def axis_range(self, axis_name: str) -> Optional[Tuple[int, int]]:
        if axis_name == "rb":
            return (0, self.block_rows)
        if axis_name == "cb":
            return (0, self.block_cols)
        if axis_name in ("ri", "ci"):
            return (0, self.block_size)
        return super().axis_range(axis_name)

    def axis_total(self, axis_name):
        if axis_name == "rb":
            return (0, self.block_rows)
        if axis_name in ("ri", "ci"):
            return (0, self.block_size)
        return None

"""Diagonal storage (DIA): ``map{d + o |-> r, o |-> c : d -> o -> v}``
(paper Figure 2).

Only diagonals containing non-zeros are stored; elements are addressed by
diagonal index ``d = r - c`` and offset ``o = c``.  Within a diagonal the
offsets form a contiguous interval, so ``o`` is an interval axis whose
bounds depend on ``d``.

Stored diagonals may contain explicit zeros (positions inside a stored
diagonal that happen to be zero) — that is inherent to the format and the
generated code multiplies them like any other stored value, exactly as a
hand-written DIA kernel would.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import PathRuntime, SparseFormat, coo_contract, coo_dedup_sort
from repro.formats.views import (
    Axis,
    BINARY,
    INCREASING,
    MapTerm,
    Nest,
    Term,
    Value,
    interval_axis,
)
from repro.polyhedra.linexpr import LinExpr


class DiaRuntime(PathRuntime):
    def __init__(self, fmt: "DiaMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        if step == 0:
            for k, d in enumerate(self.fmt.diags):
                yield (int(d),), k
        else:
            (k,) = prefix
            lo, hi = self.fmt.offset_range(int(self.fmt.diags[k]))
            for o in range(lo, hi):
                yield (o,), o

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        if step == 0:
            (d,) = keys
            k = int(np.searchsorted(self.fmt.diags, d))
            if k < self.fmt.diags.size and self.fmt.diags[k] == d:
                return k
            return None
        (k,) = prefix
        (o,) = keys
        lo, hi = self.fmt.offset_range(int(self.fmt.diags[k]))
        return o if lo <= o < hi else None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        if step == 0:
            return None  # stored diagonals are a sparse subset
        (k,) = prefix
        return self.fmt.offset_range(int(self.fmt.diags[k]))

    def get(self, prefix: Tuple) -> float:
        k, o = prefix
        return float(self.fmt.data[k, o])

    def set(self, prefix: Tuple, value: float) -> None:
        k, o = prefix
        self.fmt.data[k, o] = value


class DiaMatrix(SparseFormat):
    """DIA: ``diags`` (sorted stored diagonal indices ``d = r - c``),
    ``data`` (ndiags x ncols; ``data[k, o]`` is the element at row
    ``diags[k] + o``, column ``o``)."""

    format_name = "dia"

    def __init__(self, diags: np.ndarray, data: np.ndarray, shape: Tuple[int, int]):
        super().__init__(shape)
        self.diags = np.asarray(diags, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.shape != (self.diags.size, self.ncols):
            raise ValueError("data must be (ndiags, ncols)")
        if np.any(np.diff(self.diags) <= 0):
            raise ValueError("diags must be strictly increasing")

    def offset_range(self, d: int) -> Tuple[int, int]:
        """Valid offsets (columns) of diagonal ``d``: rows must stay in
        [0, m)."""
        lo = max(0, -d)
        hi = min(self.ncols, self.nrows - d)
        return lo, max(lo, hi)

    def _offset_ranges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`offset_range` over every stored diagonal:
        (lo, hi) arrays with ``hi >= lo``."""
        lo = np.maximum(0, -self.diags)
        hi = np.minimum(self.ncols, self.nrows - self.diags)
        return lo, np.maximum(lo, hi)

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        lo, hi = self._offset_ranges()
        return int(np.sum(hi - lo))

    def get(self, r: int, c: int) -> float:
        d = r - c
        k = int(np.searchsorted(self.diags, d))
        if k < self.diags.size and self.diags[k] == d:
            return float(self.data[k, c])
        return 0.0

    def set(self, r: int, c: int, v: float) -> None:
        d = r - c
        k = int(np.searchsorted(self.diags, d))
        if k < self.diags.size and self.diags[k] == d:
            self.data[k, c] = v
            return
        raise KeyError(f"({r},{c}) is not on a stored diagonal")

    def to_coo_arrays(self):
        # expand every diagonal's offset interval at once: one repeat for
        # the diagonal ids, one subtraction turning flat positions into
        # per-diagonal offsets
        lo, hi = self._offset_ranges()
        lens = hi - lo
        starts = np.zeros(self.diags.size + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        k_of = np.repeat(np.arange(self.diags.size, dtype=np.int64), lens)
        o = np.arange(int(starts[-1]), dtype=np.int64) - starts[k_of] + lo[k_of]
        rows = o + self.diags[k_of]
        return coo_contract(rows, o, self.data[k_of, o])

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "DiaMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "DiaMatrix":
        ds = rows - cols
        diags = np.unique(ds)
        data = np.zeros((diags.size, shape[1]))
        k = np.searchsorted(diags, ds)
        data[k, cols] = vals
        return cls(diags, data, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "DiaMatrix":
        """Loop oracle: per-element diagonal lookup and placement."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        diag_set = sorted({int(r) - int(c) for r, c in zip(rows, cols)})
        diags = np.array(diag_set, dtype=np.int64)
        index_of = {d: k for k, d in enumerate(diag_set)}
        data = np.zeros((diags.size, shape[1]))
        for r, c, v in zip(rows, cols, vals):
            data[index_of[int(r) - int(c)], int(c)] = float(v)
        return cls(diags, data, shape)

    def _reference_to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for k, d in enumerate(self.diags):
            lo, hi = self.offset_range(int(d))
            for o in range(lo, hi):
                rows.append(o + int(d))
                cols.append(o)
                vals.append(float(self.data[k, o]))
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        d = LinExpr.variable("d")
        o = LinExpr.variable("o")
        return MapTerm(
            {"r": d + o, "c": o},
            Nest(Axis("d", INCREASING, BINARY), Nest(interval_axis("o"), Value())),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["diags"]

    def runtime(self, path_id: str) -> PathRuntime:
        return DiaRuntime(self, self.path(path_id))

    def axis_range(self, axis_name: str) -> Optional[Tuple[int, int]]:
        if axis_name == "d":
            return (1 - self.ncols, self.nrows)
        if axis_name == "o":
            return (0, self.ncols)
        return super().axis_range(axis_name)

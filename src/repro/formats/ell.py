"""ELLPACK/ITPACK storage (ELL): ``r -> c -> v`` with a fixed number of
slots per row.

``colind``/``data`` are (m x K) arrays; row ``r`` stores its entries (column
indices sorted increasingly) in slots ``0..rowlen[r])``, the rest is padding.
Structurally like CSR (rows are an interval, columns increase within a row),
but with the regular layout vector machines like.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    PathRuntime,
    SparseFormat,
    coo_contract,
    coo_dedup_sort,
    csr_rowptr,
)
from repro.formats.views import Axis, BINARY, INCREASING, Nest, Term, Value, interval_axis


class EllRuntime(PathRuntime):
    def __init__(self, fmt: "EllMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        if step == 0:
            for r in range(self.fmt.nrows):
                yield (r,), r
        else:
            (r,) = prefix
            for kk in range(int(self.fmt.rowlen[r])):
                yield (int(self.fmt.colind[r, kk]),), kk

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        if step == 0:
            (r,) = keys
            return r if 0 <= r < self.fmt.nrows else None
        (r,) = prefix
        (c,) = keys
        ln = int(self.fmt.rowlen[r])
        kk = int(np.searchsorted(self.fmt.colind[r, :ln], c))
        if kk < ln and self.fmt.colind[r, kk] == c:
            return kk
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        r, kk = prefix
        return float(self.fmt.data[r, kk])

    def set(self, prefix: Tuple, value: float) -> None:
        r, kk = prefix
        self.fmt.data[r, kk] = value


class EllMatrix(SparseFormat):
    """ELL: ``colind``/``data`` (m x K), ``rowlen`` (m)."""

    format_name = "ell"

    def __init__(self, colind: np.ndarray, data: np.ndarray, rowlen: np.ndarray,
                 shape: Tuple[int, int]):
        super().__init__(shape)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.rowlen = np.asarray(rowlen, dtype=np.int64)
        if self.colind.shape != self.data.shape:
            raise ValueError("colind/data shape mismatch")
        if self.colind.ndim != 2 or self.colind.shape[0] != self.nrows:
            raise ValueError("colind must be (nrows, K)")
        if self.rowlen.shape != (self.nrows,):
            raise ValueError("rowlen must have nrows entries")
        if self.rowlen.size and self.rowlen.max(initial=0) > self.colind.shape[1]:
            raise ValueError("rowlen exceeds slot count")

    @property
    def slots(self) -> int:
        return self.colind.shape[1]

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.rowlen.sum())

    def get(self, r: int, c: int) -> float:
        ln = int(self.rowlen[r])
        kk = int(np.searchsorted(self.colind[r, :ln], c))
        if kk < ln and self.colind[r, kk] == c:
            return float(self.data[r, kk])
        return 0.0

    def set(self, r: int, c: int, v: float) -> None:
        ln = int(self.rowlen[r])
        kk = int(np.searchsorted(self.colind[r, :ln], c))
        if kk < ln and self.colind[r, kk] == c:
            self.data[r, kk] = v
            return
        raise KeyError(f"({r},{c}) is not stored (fill is not supported)")

    def to_coo_arrays(self):
        # slot-mask extraction: entry (r, kk) is stored iff kk < rowlen[r];
        # boolean indexing walks the (m x K) arrays row-major, reproducing
        # the per-row concatenation order of the loop oracle
        mask = np.arange(self.slots) < self.rowlen[:, None]
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.rowlen)
        return coo_contract(rows, self.colind[mask], self.data[mask])

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "EllMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "EllMatrix":
        # scatter packing: entry jj of row r lands in slot jj - rowptr[r]
        # (its position within the row), one vectorized assignment per array
        m, n = shape
        rowptr = csr_rowptr(rows, m)
        counts = np.diff(rowptr)
        K = int(counts.max(initial=0))
        colind = np.zeros((m, max(K, 1)), dtype=np.int64)
        data = np.zeros((m, max(K, 1)))
        slot = np.arange(rows.size, dtype=np.int64) - rowptr[rows]
        colind[rows, slot] = cols
        data[rows, slot] = vals
        return cls(colind, data, counts, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "EllMatrix":
        """Loop oracle: per-element slot packing (the pre-vectorization
        construction)."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        m, n = shape
        counts = np.zeros(m, dtype=np.int64)
        np.add.at(counts, rows, 1)
        K = int(counts.max(initial=0))
        colind = np.zeros((m, max(K, 1)), dtype=np.int64)
        data = np.zeros((m, max(K, 1)))
        slot = np.zeros(m, dtype=np.int64)
        for r, c, v in zip(rows, cols, vals):
            colind[r, slot[r]] = c
            data[r, slot[r]] = v
            slot[r] += 1
        return cls(colind, data, counts, shape)

    def _reference_to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for r in range(self.nrows):
            ln = int(self.rowlen[r])
            rows.append(np.full(ln, r, dtype=np.int64))
            cols.append(self.colind[r, :ln])
            vals.append(self.data[r, :ln])
        if not rows:
            z = np.zeros(0, dtype=np.int64)
            return z, z.copy(), np.zeros(0)
        return np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        return Nest(
            interval_axis("r"),
            Nest(Axis("c", INCREASING, BINARY), Value()),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["rows"]

    def runtime(self, path_id: str) -> PathRuntime:
        return EllRuntime(self, self.path(path_id))

    def axis_total(self, axis_name):
        return (0, self.nrows) if axis_name == "r" else None

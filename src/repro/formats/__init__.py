"""Sparse-format substrate: the view grammar (paper Figure 6), concrete
compressed formats (paper Figures 1, 2, 14), conversions, I/O and
generators.

Formats implemented: dense, COO, CSR, CSC, DIA, ELL, JAD, BSR and MSR
(diagonal U off-diagonal aggregation).  Each exposes the high-level
random-access API and the low-level access-path/runtime API consumed by the
compiler.
"""

from repro.formats.base import PathRuntime, SparseFormat
from repro.formats.views import (
    AccessPath,
    Axis,
    AxisView,
    Cross,
    Joint,
    MapTerm,
    Nest,
    PermTerm,
    Perspective,
    Step,
    Term,
    Union,
    Value,
    access_paths,
    interval_axis,
    INCREASING,
    DECREASING,
    UNORDERED,
    NOSEARCH,
    LINEAR,
    BINARY,
    DIRECT,
)
from repro.formats.dense import DenseMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.csc import CscMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix
from repro.formats.jad import JadMatrix
from repro.formats.bsr import BsrMatrix
from repro.formats.msr import MsrMatrix
from repro.formats.sym import SymMatrix
from repro.formats.convert import FORMATS, as_format, convert
from repro.formats.io import read_matrix_market, write_matrix_market, read_coo_text
from repro.formats import generate

__all__ = [
    "PathRuntime",
    "SparseFormat",
    "AccessPath",
    "Axis",
    "AxisView",
    "Cross",
    "Joint",
    "MapTerm",
    "Nest",
    "PermTerm",
    "Perspective",
    "Step",
    "Term",
    "Union",
    "Value",
    "access_paths",
    "interval_axis",
    "INCREASING",
    "DECREASING",
    "UNORDERED",
    "NOSEARCH",
    "LINEAR",
    "BINARY",
    "DIRECT",
    "DenseMatrix",
    "CooMatrix",
    "CsrMatrix",
    "CscMatrix",
    "DiaMatrix",
    "EllMatrix",
    "JadMatrix",
    "BsrMatrix",
    "MsrMatrix",
    "SymMatrix",
    "FORMATS",
    "as_format",
    "convert",
    "read_matrix_market",
    "write_matrix_market",
    "read_coo_text",
    "generate",
]

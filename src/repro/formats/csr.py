"""Compressed Sparse Row storage (CSR): ``r -> c -> v`` (paper Figure 1).

Rows are randomly accessible (an interval); within a row the stored column
indices are kept sorted, so columns enumerate in increasing order and can be
searched with binary search.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    PathRuntime,
    SparseFormat,
    coo_contract,
    coo_dedup_sort,
    csr_rowptr,
)
from repro.formats.views import Axis, BINARY, INCREASING, Nest, Term, Value, interval_axis


class CsrRuntime(PathRuntime):
    def __init__(self, fmt: "CsrMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        if step == 0:
            for r in range(self.fmt.nrows):
                yield (r,), r
        else:
            (r,) = prefix
            lo, hi = int(self.fmt.rowptr[r]), int(self.fmt.rowptr[r + 1])
            colind = self.fmt.colind
            for jj in range(lo, hi):
                yield (int(colind[jj]),), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        if step == 0:
            (r,) = keys
            return r if 0 <= r < self.fmt.nrows else None
        (r,) = prefix
        (c,) = keys
        lo, hi = int(self.fmt.rowptr[r]), int(self.fmt.rowptr[r + 1])
        jj = int(np.searchsorted(self.fmt.colind[lo:hi], c)) + lo
        if jj < hi and self.fmt.colind[jj] == c:
            return jj
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class CsrMatrix(SparseFormat):
    """CSR: ``rowptr`` (m+1), ``colind`` (nnz, sorted within each row),
    ``values`` (nnz)."""

    format_name = "csr"

    def __init__(self, rowptr: np.ndarray, colind: np.ndarray, values: np.ndarray,
                 shape: Tuple[int, int]):
        super().__init__(shape)
        self.rowptr = np.asarray(rowptr, dtype=np.int64)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.rowptr.size != self.nrows + 1:
            raise ValueError("rowptr must have nrows+1 entries")
        if self.colind.shape != self.values.shape:
            raise ValueError("colind/values length mismatch")
        if self.rowptr[0] != 0 or self.rowptr[-1] != self.colind.size:
            raise ValueError("rowptr endpoints inconsistent with nnz")
        if np.any(np.diff(self.rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def row_slice(self, r: int) -> Tuple[int, int]:
        return int(self.rowptr[r]), int(self.rowptr[r + 1])

    def get(self, r: int, c: int) -> float:
        lo, hi = self.row_slice(r)
        jj = int(np.searchsorted(self.colind[lo:hi], c)) + lo
        if jj < hi and self.colind[jj] == c:
            return float(self.values[jj])
        return 0.0

    def set(self, r: int, c: int, v: float) -> None:
        lo, hi = self.row_slice(r)
        jj = int(np.searchsorted(self.colind[lo:hi], c)) + lo
        if jj < hi and self.colind[jj] == c:
            self.values[jj] = v
            return
        raise KeyError(f"({r},{c}) is not stored (fill is not supported)")

    def to_coo_arrays(self):
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), np.diff(self.rowptr))
        return coo_contract(rows, self.colind.copy(), self.values.copy())

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CsrMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "CsrMatrix":
        return cls(csr_rowptr(rows, shape[0]), cols.copy(), vals.copy(), shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "CsrMatrix":
        """Loop oracle: per-element row counting (the pre-vectorization
        construction, kept for differential testing)."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        m, n = shape
        rowptr = np.zeros(m + 1, dtype=np.int64)
        for r in rows:
            rowptr[int(r) + 1] += 1
        np.cumsum(rowptr, out=rowptr)
        return cls(rowptr, cols, vals, shape)

    def _reference_to_coo_arrays(self):
        rows = np.empty(self.nnz, dtype=np.int64)
        for r in range(self.nrows):
            for jj in range(int(self.rowptr[r]), int(self.rowptr[r + 1])):
                rows[jj] = r
        return rows, self.colind.copy(), self.values.copy()

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        return Nest(
            interval_axis("r"),
            Nest(Axis("c", INCREASING, BINARY), Value()),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["rows"]

    def runtime(self, path_id: str) -> PathRuntime:
        return CsrRuntime(self, self.path(path_id))

    def axis_total(self, axis_name):
        # every row index in [0, m) is enumerated, including empty rows
        return (0, self.nrows) if axis_name == "r" else None

"""The sparse-matrix abstraction: the index-structure grammar of paper
Figure 6, with enumeration properties.

A format designer describes *how a format can be walked* with a term::

    E := Index -> E                    (nesting)
       | map{F(in) |-> out : E}        (affine change of coordinates)
       | perm{P(in) |-> out : E}       (permutation of one coordinate)
       | E U E                         (aggregation: both parts must be walked)
       | E (+) E                       (perspective: either part may be walked)
       | v                             (the stored value)

    Index := attribute                 (a single coordinate)
           | <attr, ..., attr>         (coordinates enumerated jointly)
           | (attr x ... x attr)       (independent dense coordinates)

Each attribute carries *enumeration properties*: the order in which stored
entries yield the coordinate (increasing / decreasing / unordered), how the
coordinate can be searched (none / linear / binary / direct), and whether the
coordinate is a dense interval (in which case it can be enumerated in any
direction and searched directly).

:func:`access_paths` flattens a view term into the set of alternative
*access paths*.  Perspectives multiply alternatives; aggregations produce
paths tagged with a branch id (the compiler executes statements once per
branch, paper Section 4); maps rewrite the relation between the matrix's
logical dimensions (row ``r``, column ``c``) and the stored axes;
permutations keep the logical dimension but mark that its stored enumeration
order is meaningless and that searching it goes through the permutation's
inverse.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.polyhedra.linexpr import LinExpr

# enumeration orders
INCREASING = "increasing"
DECREASING = "decreasing"
UNORDERED = "unordered"

# search methods
NOSEARCH = "none"
LINEAR = "linear"
BINARY = "binary"
DIRECT = "direct"

_ORDERS = (INCREASING, DECREASING, UNORDERED)
_SEARCHES = (NOSEARCH, LINEAR, BINARY, DIRECT)


class Axis:
    """An attribute with its enumeration properties."""

    __slots__ = ("name", "order", "search", "interval")

    def __init__(self, name: str, order: str = UNORDERED, search: str = NOSEARCH,
                 interval: bool = False):
        if order not in _ORDERS:
            raise ValueError(f"unknown order {order!r}")
        if search not in _SEARCHES:
            raise ValueError(f"unknown search {search!r}")
        self.name = name
        self.order = order
        self.search = search
        self.interval = interval

    def __repr__(self):
        extra = ",interval" if self.interval else ""
        return f"Axis({self.name},{self.order},{self.search}{extra})"


def interval_axis(name: str) -> Axis:
    """A dense interval coordinate: any direction, direct search."""
    return Axis(name, order=INCREASING, search=DIRECT, interval=True)


# ---------------------------------------------------------------------------
# View terms
# ---------------------------------------------------------------------------

class Term:
    """Base class of view terms."""

    __slots__ = ()


class Value(Term):
    """The stored value leaf ``v``."""

    __slots__ = ()

    def __repr__(self):
        return "v"


class Nest(Term):
    """``axis -> child``."""

    __slots__ = ("axis", "child")

    def __init__(self, axis: Axis, child: Term):
        self.axis = axis
        self.child = child

    def __repr__(self):
        return f"{self.axis.name} -> {self.child!r}"


class Joint(Term):
    """``<a, b, ...> -> child`` — coordinates enumerated together (COO)."""

    __slots__ = ("axes", "child")

    def __init__(self, axes: Sequence[Axis], child: Term):
        self.axes = tuple(axes)
        self.child = child

    def __repr__(self):
        names = ", ".join(a.name for a in self.axes)
        return f"<{names}> -> {self.child!r}"


class Cross(Term):
    """``(a x b x ...) -> child`` — independent dense coordinates; every
    ordering of the coordinates is a valid nesting (dense storage)."""

    __slots__ = ("axes", "child")

    def __init__(self, axes: Sequence[Axis], child: Term):
        self.axes = tuple(axes)
        self.child = child

    def __repr__(self):
        names = " x ".join(a.name for a in self.axes)
        return f"({names}) -> {self.child!r}"


class MapTerm(Term):
    """``map{F(in) |-> out : child}`` — affine coordinate change.

    ``mapping`` gives, for each *output* (logical) coordinate, an affine
    expression over the child's (stored) coordinates, e.g. for DIA
    ``{"r": d + o, "c": o}``.
    """

    __slots__ = ("mapping", "child")

    def __init__(self, mapping: Mapping[str, LinExpr], child: Term):
        self.mapping = {k: LinExpr.coerce(v) for k, v in mapping.items()}
        self.child = child

    def __repr__(self):
        m = ", ".join(f"{v!r} |-> {k}" for k, v in self.mapping.items())
        return f"map{{{m} : {self.child!r}}}"


class PermTerm(Term):
    """``perm{P(stored) |-> logical : child}`` — one coordinate goes through
    a permutation vector named ``perm_name`` (JAD's ``iperm``)."""

    __slots__ = ("logical", "stored", "perm_name", "child")

    def __init__(self, logical: str, stored: str, perm_name: str, child: Term):
        self.logical = logical
        self.stored = stored
        self.perm_name = perm_name
        self.child = child

    def __repr__(self):
        return f"perm{{{self.perm_name}[{self.stored}] |-> {self.logical} : {self.child!r}}}"


class Union(Term):
    """``left U right`` — both structures must be enumerated (aggregation)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term):
        self.left = left
        self.right = right

    def __repr__(self):
        return f"({self.left!r}) U ({self.right!r})"


class Perspective(Term):
    """``left (+) right`` — the matrix can be accessed through either
    structure."""

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term):
        self.left = left
        self.right = right

    def __repr__(self):
        return f"({self.left!r}) (+) ({self.right!r})"


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

class AxisView:
    """How one product-space (logical or post-map) coordinate behaves along
    a particular access path."""

    __slots__ = ("name", "order", "search", "interval", "perm")

    def __init__(self, name: str, order: str, search: str, interval: bool,
                 perm: Optional[str] = None):
        self.name = name
        self.order = order
        self.search = search
        self.interval = interval
        self.perm = perm  # name of the permutation vector, if any

    def __repr__(self):
        p = f",perm={self.perm}" if self.perm else ""
        return f"AxisView({self.name},{self.order},{self.search}{p})"


class Step:
    """One enumeration level of an access path: one axis (nesting) or a
    tuple of axes produced together (joint)."""

    __slots__ = ("axes", "joint")

    def __init__(self, axes: Sequence[AxisView], joint: bool):
        self.axes = tuple(axes)
        self.joint = joint

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    def __repr__(self):
        names = ",".join(self.names)
        return f"Step({'<' + names + '>' if self.joint else names})"


class AccessPath:
    """A complete way of walking a format down to its values.

    - ``steps`` — the enumeration levels, outermost first;
    - ``subs`` — for each logical matrix dimension ("r"/"c"), an affine
      expression over the step axis names (identity unless a map intervened);
    - ``branch`` — aggregation branch id ("" when the view has no Union);
    - ``path_id`` — stable identifier used to look up the runtime.
    """

    __slots__ = ("path_id", "steps", "subs", "branch")

    def __init__(self, path_id: str, steps: Sequence[Step],
                 subs: Mapping[str, LinExpr], branch: str = ""):
        self.path_id = path_id
        self.steps = tuple(steps)
        self.subs = {k: LinExpr.coerce(v) for k, v in subs.items()}
        self.branch = branch

    @property
    def axis_names(self) -> Tuple[str, ...]:
        out: List[str] = []
        for s in self.steps:
            out.extend(s.names)
        return tuple(out)

    def axis(self, name: str) -> AxisView:
        for s in self.steps:
            for a in s.axes:
                if a.name == name:
                    return a
        raise KeyError(name)

    def step_of(self, name: str) -> int:
        for i, s in enumerate(self.steps):
            if name in s.names:
                return i
        raise KeyError(name)

    def __repr__(self):
        chain = " -> ".join(repr(s) for s in self.steps)
        br = f" [{self.branch}]" if self.branch else ""
        return f"AccessPath({self.path_id}: {chain}{br})"


def access_paths(term: Term, logical_dims: Sequence[str] = ("r", "c")) -> List[AccessPath]:
    """Flatten a view term into its access paths.

    Path ids are assigned deterministically from the traversal; formats that
    need specific ids should rename afterwards (see
    :meth:`~repro.formats.base.SparseFormat.with_path_ids`).
    """

    def walk(t: Term) -> List[Tuple[List[Step], Dict[str, LinExpr], str]]:
        if isinstance(t, Value):
            return [([], {}, "")]
        if isinstance(t, Nest):
            av = AxisView(t.axis.name, t.axis.order, t.axis.search, t.axis.interval)
            out = []
            for steps, subs, br in walk(t.child):
                out.append(([Step([av], joint=False)] + steps, subs, br))
            return out
        if isinstance(t, Joint):
            avs = [AxisView(a.name, a.order, a.search, a.interval) for a in t.axes]
            out = []
            for steps, subs, br in walk(t.child):
                out.append(([Step(avs, joint=True)] + steps, subs, br))
            return out
        if isinstance(t, Cross):
            out = []
            for perm_axes in itertools.permutations(t.axes):
                head = [Step([AxisView(a.name, a.order, a.search, a.interval)], joint=False)
                        for a in perm_axes]
                for steps, subs, br in walk(t.child):
                    out.append((head + list(steps), subs, br))
            return out
        if isinstance(t, MapTerm):
            out = []
            for steps, subs, br in walk(t.child):
                new_subs = dict(subs)
                for logical, expr in t.mapping.items():
                    # compose: the logical dim is `expr` over the child's axes;
                    # child's own subs may already rewrite those axes
                    new_subs[logical] = expr.substitute(subs) if subs else expr
                out.append((list(steps), new_subs, br))
            return out
        if isinstance(t, PermTerm):
            out = []
            for steps, subs, br in walk(t.child):
                renamed: List[Step] = []
                for s in steps:
                    axes = []
                    for a in s.axes:
                        if a.name == t.stored:
                            # logical coordinate: stored order is meaningless
                            # for the logical values; searching goes through
                            # the inverse permutation (direct once built).
                            axes.append(AxisView(
                                t.logical,
                                UNORDERED,
                                a.search if a.search != NOSEARCH else NOSEARCH,
                                a.interval,
                                perm=t.perm_name,
                            ))
                        else:
                            axes.append(a)
                    renamed.append(Step(axes, s.joint))
                new_subs = {k: v.rename({t.stored: t.logical}) for k, v in subs.items()}
                out.append((renamed, new_subs, br))
            return out
        if isinstance(t, Perspective):
            return walk(t.left) + walk(t.right)
        if isinstance(t, Union):
            out = []
            for steps, subs, br in walk(t.left):
                out.append((steps, subs, ("u0" + br) if br else "u0"))
            for steps, subs, br in walk(t.right):
                out.append((steps, subs, ("u1" + br) if br else "u1"))
            return out
        raise TypeError(f"unknown view term {type(t).__name__}")

    results = walk(term)
    paths: List[AccessPath] = []
    for i, (steps, subs, br) in enumerate(results):
        full_subs: Dict[str, LinExpr] = {}
        axis_names = [a.name for s in steps for a in s.axes]
        for d in logical_dims:
            if d in subs:
                full_subs[d] = subs[d]
            elif d in axis_names:
                full_subs[d] = LinExpr.variable(d)
            else:
                raise ValueError(
                    f"logical dimension {d!r} is neither an axis nor produced by a map "
                    f"in path {i} of {term!r}"
                )
        paths.append(AccessPath(f"p{i}", steps, full_subs, br))
    return paths


def union_branches(paths: Sequence[AccessPath]) -> List[str]:
    """Distinct aggregation branch ids among the paths ('' = no union)."""
    seen: List[str] = []
    for p in paths:
        if p.branch not in seen:
            seen.append(p.branch)
    return seen

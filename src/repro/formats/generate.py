"""Synthetic matrix generators for tests and benchmarks.

The paper measures on ``can_1072`` from the Harwell–Boeing collection — a
1072x1072 structural-engineering matrix with symmetric pattern and 12444
stored entries.  :func:`can_1072_like` synthesizes a deterministic matrix
with the same order and a similar non-zero budget and row-length spread
(see DESIGN.md, substitutions table); real matrices can be read with
:mod:`repro.formats.io` instead when available.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.coo import CooMatrix


def random_sparse(m: int, n: int, density: float = 0.05, seed: int = 0,
                  ensure_diag: bool = False) -> CooMatrix:
    """Uniform random sparse matrix with values in [0.5, 1.5) (bounded away
    from zero so triangular solves stay well-conditioned)."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(density * m * n)))
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.random(nnz) + 0.5
    mat = CooMatrix.from_coo(rows, cols, vals, (m, n))
    if ensure_diag:
        d = np.arange(min(m, n))
        rows2 = np.concatenate([mat.rows, d])
        cols2 = np.concatenate([mat.cols, d])
        vals2 = np.concatenate([mat.vals, np.full(d.size, float(min(m, n)))])
        mat = CooMatrix.from_coo(rows2, cols2, vals2, (m, n))
    return mat


def banded(n: int, bandwidth: int = 1, seed: int = 0) -> CooMatrix:
    """Banded matrix: all diagonals with |r - c| <= bandwidth stored,
    strong diagonal."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for d in range(-bandwidth, bandwidth + 1):
        lo, hi = max(0, -d), min(n, n - d)
        idx = np.arange(lo, hi)
        rows.append(idx + d)
        cols.append(idx)
        v = rng.random(idx.size) + 0.5
        if d == 0:
            v = v + 2.0 * bandwidth
        vals.append(v)
    return CooMatrix.from_coo(np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals), (n, n))


def tridiagonal(n: int, seed: int = 0) -> CooMatrix:
    return banded(n, bandwidth=1, seed=seed)


def laplacian_2d(k: int) -> CooMatrix:
    """The 5-point finite-difference Laplacian on a k x k grid — the classic
    FEM-motivated SPD test matrix (n = k^2, paper's introduction workload)."""
    n = k * k
    rows, cols, vals = [], [], []

    def add(r, c, v):
        rows.append(r)
        cols.append(c)
        vals.append(v)

    for i in range(k):
        for j in range(k):
            p = i * k + j
            add(p, p, 4.0)
            if i > 0:
                add(p, p - k, -1.0)
            if i < k - 1:
                add(p, p + k, -1.0)
            if j > 0:
                add(p, p - 1, -1.0)
            if j < k - 1:
                add(p, p + 1, -1.0)
    return CooMatrix.from_coo(np.array(rows), np.array(cols), np.array(vals), (n, n))


def can_1072_like(n: int = 1072, target_nnz: int = 12444, seed: int = 1072) -> CooMatrix:
    """A deterministic synthetic stand-in for Harwell–Boeing ``can_1072``.

    Matches: the order (1072), symmetric pattern, a full diagonal, ~12.4k
    stored entries, and a mix of local (banded) and distant (sparse random)
    connectivity typical of the CANNES structural meshes.  The values are
    synthetic (the original is a pattern-only matrix; NIST benchmarks filled
    it with arbitrary reals, as do we).
    """
    rng = np.random.default_rng(seed)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    # local band: connect to a few nearby nodes (mesh locality)
    for d in (1, 2, 3):
        keep = rng.random(n - d) < 0.55
        idx = np.nonzero(keep)[0]
        rows.append(idx + d)
        cols.append(idx)
        rows.append(idx)
        cols.append(idx + d)
    # distant couplings until the budget is met (symmetric pairs)
    have = sum(r.size for r in rows)
    extra = max(0, (target_nnz - have) // 2)
    rr = rng.integers(0, n, size=extra * 2)
    cc = rng.integers(0, n, size=extra * 2)
    mask = rr > cc
    rr, cc = rr[mask][:extra], cc[mask][:extra]
    rows.extend([rr, cc])
    cols.extend([cc, rr])
    rows_all = np.concatenate(rows)
    cols_all = np.concatenate(cols)
    vals = rng.random(rows_all.size) + 0.5
    # symmetrize values by keying on the unordered pair
    lo = np.minimum(rows_all, cols_all)
    hi = np.maximum(rows_all, cols_all)
    pair_rng = np.random.default_rng(seed + 1)
    vals = (np.sin(lo * 7919.0 + hi * 104729.0) + 1.6) * 0.5  # deterministic symmetric
    vals[rows_all == cols_all] = 8.0  # dominant diagonal
    return CooMatrix.from_coo(rows_all, cols_all, vals, (n, n))


def power_law_rows(m: int, n: int, nnz_target: Optional[int] = None,
                   alpha: float = 1.3, seed: int = 0) -> CooMatrix:
    """Sparse matrix with power-law row lengths: a few very heavy rows and
    a long tail of near-empty ones (web graphs, social networks — the
    structure class where ELL collapses and row-balanced formats lose).

    Row lengths follow ``rank^-alpha`` scaled to ``nnz_target`` (default
    ``5 * m``), clipped to ``[1, n]``, and shuffled so row index and row
    length are uncorrelated; columns are uniform."""
    rng = np.random.default_rng(seed)
    if nnz_target is None:
        nnz_target = 5 * m
    ranks = np.arange(1, m + 1, dtype=np.float64)
    weights = ranks ** -alpha
    counts = np.round(weights / weights.sum() * nnz_target).astype(np.int64)
    counts = np.clip(counts, 1, n)
    counts = counts[rng.permutation(m)]
    rows = np.repeat(np.arange(m, dtype=np.int64), counts)
    cols = rng.integers(0, n, size=int(counts.sum()))
    vals = rng.random(rows.size) + 0.5
    return CooMatrix.from_coo(rows, cols, vals, (m, n))


def block_structured(n: int, block_size: int = 4, blocks_per_row: int = 2,
                     seed: int = 0) -> CooMatrix:
    """Matrix of fully dense ``block_size x block_size`` tiles on a sparse
    block skeleton (FEM with vector unknowns — the BSR sweet spot): every
    block row gets its diagonal block plus ``blocks_per_row`` random ones.
    ``n`` is rounded down to a multiple of ``block_size``."""
    s = int(block_size)
    nb = max(1, n // s)
    rng = np.random.default_rng(seed)
    rb = np.concatenate([np.repeat(np.arange(nb, dtype=np.int64),
                                   blocks_per_row),
                         np.arange(nb, dtype=np.int64)])
    cb = np.concatenate([rng.integers(0, nb, size=nb * blocks_per_row),
                         np.arange(nb, dtype=np.int64)])
    # expand each block coordinate to its dense s x s tile
    ri, ci = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
    rows = (rb[:, None] * s + ri.ravel()[None, :]).ravel()
    cols = (cb[:, None] * s + ci.ravel()[None, :]).ravel()
    vals = rng.random(rows.size) + 0.5
    # strengthen the diagonal (duplicate blocks are summed by from_coo)
    vals[rows == cols] += float(s * (blocks_per_row + 1))
    return CooMatrix.from_coo(rows, cols, vals, (nb * s, nb * s))


def lower_triangular_of(mat: CooMatrix, unit_free_diag: bool = True) -> CooMatrix:
    """The lower-triangular part (including diagonal) of a matrix, with the
    diagonal forced non-zero so it can drive a triangular solve — exactly
    how the TS benchmark extracts L from can_1072."""
    rows, cols, vals = mat.to_coo_arrays()
    keep = rows >= cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    n = min(mat.shape)
    d = np.arange(n)
    rows = np.concatenate([rows, d])
    cols = np.concatenate([cols, d])
    vals = np.concatenate([vals, np.full(n, float(n) if unit_free_diag else 1.0)])
    out = CooMatrix.from_coo(rows, cols, vals, mat.shape)
    out.annotate_triangular("lower")
    return out


def upper_triangular_of(mat: CooMatrix) -> CooMatrix:
    """The upper-triangular part (including a strengthened diagonal)."""
    rows, cols, vals = mat.to_coo_arrays()
    keep = rows <= cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    n = min(mat.shape)
    d = np.arange(n)
    rows = np.concatenate([rows, d])
    cols = np.concatenate([cols, d])
    vals = np.concatenate([vals, np.full(n, float(n))])
    out = CooMatrix.from_coo(rows, cols, vals, mat.shape)
    out.annotate_triangular("upper")
    return out

"""Jagged Diagonal storage (JAD) — the paper's appendix format.

Construction (paper Figure 14): compress each row (dropping zeros, keeping
column indices sorted), sort rows by non-zero count in *decreasing* order
(recording the permutation ``iperm``: ``iperm[rr]`` is the original row of
permuted row ``rr``), then store the columns of the compressed-and-sorted
matrix (the "jagged diagonals") contiguously: ``dptr[d]`` is the start of
diagonal ``d`` in ``colind``/``values``, and position ``dptr[d] + rr`` is
the ``d``-th stored entry of permuted row ``rr``.

Index structure (paper Section 2 / appendix A.2)::

    perm{iperm[rr] |-> r : (<rr, c> -> v)  (+)  (rr -> c -> v)}

- the *flat* perspective enumerates all entries fast (diagonal-major), rows
  emerging unordered;
- the *rows* perspective gives random access to permuted rows (and hence,
  through the inverse permutation, to logical rows — which is what a
  restructured triangular solve needs, paper Figure 9).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    PathRuntime,
    SparseFormat,
    coo_contract,
    coo_dedup_sort,
    csr_rowptr,
)
from repro.formats.views import (
    Axis,
    BINARY,
    INCREASING,
    Joint,
    Nest,
    NOSEARCH,
    PermTerm,
    Perspective,
    Term,
    UNORDERED,
    Value,
    interval_axis,
)


class JadFlatRuntime(PathRuntime):
    """Diagonal-major enumeration: the JadFlat/JadFlatIterator analog."""

    def __init__(self, fmt: "JadMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        d = 0
        for jj in range(fmt.nnz):
            while jj >= fmt.dptr[d + 1]:
                d += 1
            rr = jj - int(fmt.dptr[d])
            yield (int(fmt.iperm[rr]), int(fmt.colind[jj])), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        r, c = keys
        rr = self.fmt.rr_of(r)
        if rr is None:
            return None
        jj = self.fmt.find_in_row(rr, c)
        return jj

    def get(self, prefix: Tuple) -> float:
        (jj,) = prefix
        return float(self.fmt.values[jj])

    def set(self, prefix: Tuple, value: float) -> None:
        (jj,) = prefix
        self.fmt.values[jj] = value


class JadRowsRuntime(PathRuntime):
    """Row-oriented access: the JadHier/JadRow/JadRowIterator analog."""

    def __init__(self, fmt: "JadMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        if step == 0:
            for rr in range(fmt.nrows):
                yield (int(fmt.iperm[rr]),), rr
        else:
            (rr,) = prefix
            for d in range(int(fmt.rowcnt[rr])):
                jj = int(fmt.dptr[d]) + rr
                yield (int(fmt.colind[jj]),), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        fmt = self.fmt
        if step == 0:
            (r,) = keys
            return fmt.rr_of(r)
        (rr,) = prefix
        (c,) = keys
        return fmt.find_in_row(rr, c)

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        # logical rows form the interval [0, m): enumerate r and search rr
        # through the inverse permutation (paper Figure 9's structure)
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class JadMatrix(SparseFormat):
    """JAD: ``iperm`` (m), ``dptr`` (nd+1), ``colind``/``values`` (nnz),
    plus derived ``rowcnt`` (entries per permuted row) and the inverse
    permutation (built once; the paper's ``term_perm_vector.unapply`` does a
    linear scan — we precompute, which only changes a constant factor of the
    search cost)."""

    format_name = "jad"

    def __init__(self, iperm: np.ndarray, dptr: np.ndarray, colind: np.ndarray,
                 values: np.ndarray, shape: Tuple[int, int]):
        super().__init__(shape)
        self.iperm = np.asarray(iperm, dtype=np.int64)
        self.dptr = np.asarray(dptr, dtype=np.int64)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.iperm.size != self.nrows:
            raise ValueError("iperm must have nrows entries")
        if self.colind.shape != self.values.shape:
            raise ValueError("colind/values length mismatch")
        if self.dptr[0] != 0 or self.dptr[-1] != self.colind.size:
            raise ValueError("dptr endpoints inconsistent with nnz")
        lens = np.diff(self.dptr)
        if np.any(lens < 0) or (lens.size > 1 and np.any(lens[1:] > lens[:-1])):
            raise ValueError("jagged diagonal lengths must be non-increasing")
        # entries per permuted row: rr has one entry in each diagonal longer
        # than rr; lens is non-increasing, so the count is a binary search
        # over the reversed (ascending) lengths instead of an O(m * nd) scan
        rr_all = np.arange(self.nrows, dtype=np.int64)
        self.rowcnt = lens.size - np.searchsorted(lens[::-1], rr_all, side="right")
        self.ipermi = np.empty(self.nrows, dtype=np.int64)
        self.ipermi[self.iperm] = np.arange(self.nrows, dtype=np.int64)

    # -- helpers ------------------------------------------------------------
    @property
    def ndiags(self) -> int:
        return self.dptr.size - 1

    def rr_of(self, r: int) -> Optional[int]:
        """Permuted index of logical row r (inverse permutation)."""
        if 0 <= r < self.nrows:
            return int(self.ipermi[r])
        return None

    def find_in_row(self, rr: int, c: int) -> Optional[int]:
        """Position jj of column c within permuted row rr (binary search
        over the diagonals: column indices increase along a row)."""
        lo, hi = 0, int(self.rowcnt[rr])
        while lo < hi:
            mid = (lo + hi) // 2
            jj = int(self.dptr[mid]) + rr
            cc = int(self.colind[jj])
            if cc == c:
                return jj
            if cc < c:
                lo = mid + 1
            else:
                hi = mid
        return None

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def get(self, r: int, c: int) -> float:
        rr = self.rr_of(r)
        if rr is None:
            return 0.0
        jj = self.find_in_row(rr, c)
        return float(self.values[jj]) if jj is not None else 0.0

    def set(self, r: int, c: int, v: float) -> None:
        rr = self.rr_of(r)
        jj = self.find_in_row(rr, c) if rr is not None else None
        if jj is None:
            raise KeyError(f"({r},{c}) is not stored (fill is not supported)")
        self.values[jj] = v

    def to_coo_arrays(self):
        # expand diagonal ids over their lengths, recover the in-diagonal
        # offset (= permuted row) by subtracting each diagonal's start, and
        # map back to logical rows through the permutation — all O(nnz)
        lens = np.diff(self.dptr)
        d_of = np.repeat(np.arange(self.ndiags, dtype=np.int64), lens)
        rr = np.arange(self.nnz, dtype=np.int64) - self.dptr[d_of]
        rows = self.iperm[rr] if self.nnz else np.zeros(0, dtype=np.int64)
        return coo_contract(rows, self.colind.copy(), self.values.copy())

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "JadMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "JadMatrix":
        # Scatter construction: entry jj of the row-major input sits in
        # slot d = jj - rowptr[rows[jj]] of its row, i.e. on jagged
        # diagonal d at offset rr = ipermi[rows[jj]], so its destination
        # is dptr[d] + rr — one permutation index array, two scatters.
        m, n = shape
        rowptr = csr_rowptr(rows, m)
        counts = np.diff(rowptr)
        # sort rows by count decreasing; stable so equal-count rows keep
        # their original order (deterministic construction)
        iperm = np.argsort(-counts, kind="stable").astype(np.int64)
        ipermi = np.empty(m, dtype=np.int64)
        ipermi[iperm] = np.arange(m, dtype=np.int64)
        nd = int(counts.max(initial=0))
        # diagonal d holds one entry per row with more than d entries;
        # counts[iperm] is non-increasing, so diagonal lengths fall out of
        # one binary search (the same identity rowcnt uses, transposed)
        sorted_desc = counts[iperm]
        lens = m - np.searchsorted(sorted_desc[::-1], np.arange(nd, dtype=np.int64),
                                   side="right")
        dptr = np.zeros(nd + 1, dtype=np.int64)
        np.cumsum(lens, out=dptr[1:])
        slot = np.arange(rows.size, dtype=np.int64) - rowptr[rows]
        dest = dptr[slot] + ipermi[rows]
        colind = np.empty(rows.size, dtype=np.int64)
        values = np.empty(rows.size)
        colind[dest] = cols
        values[dest] = vals
        return cls(iperm, dptr, colind, values, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "JadMatrix":
        """Loop oracle: the paper's Figure 14 construction, one appended
        element at a time (the pre-vectorization implementation)."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        m, n = shape
        counts = np.zeros(m, dtype=np.int64)
        np.add.at(counts, rows, 1)
        iperm = np.argsort(-counts, kind="stable").astype(np.int64)
        rowptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        nd = int(counts.max(initial=0))
        dptr = [0]
        colind: List[int] = []
        values: List[float] = []
        for d in range(nd):
            for rr in range(m):
                r = int(iperm[rr])
                if counts[r] <= d:
                    break  # rows sorted by count: nothing longer follows
                pos = int(rowptr[r]) + d
                colind.append(int(cols[pos]))
                values.append(float(vals[pos]))
            dptr.append(len(colind))
        return cls(iperm, np.array(dptr, dtype=np.int64),
                   np.array(colind, dtype=np.int64), np.array(values), shape)

    def _reference_to_coo_arrays(self):
        rows = np.empty(self.nnz, dtype=np.int64)
        d = 0
        for jj in range(self.nnz):
            while jj >= self.dptr[d + 1]:
                d += 1
            rows[jj] = self.iperm[jj - int(self.dptr[d])]
        return rows, self.colind.copy(), self.values.copy()

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        flat = Joint([Axis("rr", UNORDERED, NOSEARCH), Axis("c", UNORDERED, NOSEARCH)],
                     Value())
        hier = Nest(interval_axis("rr"), Nest(Axis("c", INCREASING, BINARY), Value()))
        return PermTerm("r", "rr", "iperm", Perspective(flat, hier))

    def path_ids(self) -> Optional[List[str]]:
        return ["flat", "rows"]

    def runtime(self, path_id: str) -> PathRuntime:
        if path_id == "flat":
            return JadFlatRuntime(self, self.path(path_id))
        if path_id == "rows":
            return JadRowsRuntime(self, self.path(path_id))
        raise KeyError(path_id)

    def axis_total(self, axis_name):
        # iperm is a bijection on [0, m): row-oriented enumeration (and the
        # interval+inverse-permutation search) visits every logical row
        return (0, self.nrows) if axis_name == "r" else None

"""Base classes of the sparse-format substrate.

A format implements two APIs, mirroring the paper's two-API design
(Section 1):

- the **high-level API** (`get`, `set`, `to_dense`, shape/nnz): the
  dense-matrix view used by algorithm designers and by the reference
  interpreters;
- the **low-level API** (`view`, `paths`, `runtime`): the index structure
  exposed to the restructuring compiler, plus per-path enumeration/search
  runtimes (the analog of the paper's ``term_nesting`` / iterator classes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.formats.views import AccessPath, Term, access_paths, union_branches
from repro.polyhedra.system import System


class PathRuntime:
    """Enumeration/search runtime for one access path of one matrix.

    States are opaque per-step handles; ``prefix`` is the tuple of states of
    all enclosing steps.  ``keys`` are the *logical* (post-map) coordinate
    values of the step's axes — permutations are resolved inside the runtime
    (enumerating a permuted axis yields logical values; searching one applies
    the inverse permutation).
    """

    #: the AccessPath this runtime implements (set by the format)
    path: AccessPath

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        """Yield ``(keys, state)`` for every stored entry of this step under
        the given prefix, in the path's stored order."""
        raise NotImplementedError

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        """State for the entry with the given keys, or None if absent.
        Only valid when every axis of the step is searchable."""
        raise NotImplementedError

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        """Half-open [lo, hi) coordinate range when the (single) axis of the
        step is an interval; None otherwise."""
        return None

    def get(self, prefix: Tuple) -> float:
        """The stored value once all steps have states."""
        raise NotImplementedError

    def set(self, prefix: Tuple, value: float) -> None:
        raise NotImplementedError


class SparseFormat:
    """Base class: shape bookkeeping, COO interchange, random access,
    and the low-level view/path/runtime API."""

    #: short format tag ("csr", "jad", ...)
    format_name: str = "abstract"

    def __init__(self, shape: Tuple[int, int]):
        m, n = shape
        if m < 0 or n < 0:
            raise ValueError(f"bad shape {shape}")
        self.shape = (int(m), int(n))

    # -- high-level API ----------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the stored values (float64 for the stock constructors;
        derived from the value array so hand-built or future non-double
        instances report truthfully).  The BLAS layer promotes with
        ``np.result_type(A.dtype, x.dtype)`` when allocating outputs."""
        for attr in ("values", "vals", "data", "dvals"):
            v = getattr(self, attr, None)
            if isinstance(v, np.ndarray):
                return v.dtype
        return np.dtype(np.float64)

    def get(self, r: int, c: int) -> float:
        """Random access (0 for unstored elements) — the JadRandom analog."""
        raise NotImplementedError

    def set(self, r: int, c: int, v: float) -> None:
        """Update a *stored* element; raises KeyError for unstored positions
        (no fill, paper Section 1)."""
        raise NotImplementedError

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) of all stored entries, any order.

        Contract (relied upon by the conversion fast paths and the native
        backend): ``rows``/``cols`` are int64 and ``values`` is
        C-contiguous; all three are freshly allocated (mutating them never
        aliases the format's own storage)."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        rows, cols, vals = self.to_coo_arrays()
        out = np.zeros(self.shape)
        # additive densification would hide duplicate entries; formats keep
        # entries unique, so plain assignment is correct and catches bugs
        out[rows, cols] = vals
        return out

    def copy(self) -> "SparseFormat":
        rows, cols, vals = self.to_coo_arrays()
        return type(self).from_coo(rows, cols, vals.copy(), self.shape)

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "SparseFormat":
        raise NotImplementedError

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape, **kwargs) -> "SparseFormat":
        """Construct from triples already in canonical row-major form
        (sorted by ``(row, col)``, unique, in bounds, int64/float64).

        This is the construction core the vectorized data plane shares:
        :func:`repro.formats.convert.convert` fast paths and
        :func:`repro.search.format_select.select_format` canonicalize the
        triples *once* and hand them to every target through this entry
        point.  The default routes through :meth:`from_coo`, whose
        canonicalization detects already-sorted input in O(nnz), so
        custom formats stay correct without overriding."""
        return cls.from_coo(rows, cols, vals, shape, **kwargs)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "SparseFormat":
        a = np.asarray(a)
        rows, cols = np.nonzero(a)
        return cls.from_coo(rows, cols, a[rows, cols].astype(float), a.shape)

    @classmethod
    def from_scipy(cls, sp, **kwargs) -> "SparseFormat":
        coo = sp.tocoo()
        return cls.from_coo(coo.row, coo.col, coo.data.astype(float), coo.shape,
                            **kwargs)

    def to_scipy(self):
        import scipy.sparse as sps

        rows, cols, vals = self.to_coo_arrays()
        return sps.coo_matrix((vals, (rows, cols)), shape=self.shape)

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        """The index-structure term (paper Figure 6 grammar)."""
        raise NotImplementedError

    def paths(self) -> List[AccessPath]:
        """Access paths of the view, with this format's stable path ids."""
        cached = getattr(self, "_paths_cache", None)
        if cached is None:
            cached = access_paths(self.view())
            ids = self.path_ids()
            if ids is not None:
                if len(ids) != len(cached):
                    raise ValueError(
                        f"{self.format_name}: {len(ids)} path ids for {len(cached)} paths"
                    )
                cached = [AccessPath(pid, p.steps, p.subs, p.branch)
                          for pid, p in zip(ids, cached)]
            self._paths_cache = cached
        return list(cached)

    def path_ids(self) -> Optional[List[str]]:
        """Human-readable ids, in the order :func:`access_paths` produces
        them; None keeps the generated p0/p1/... ids."""
        return None

    def path(self, path_id: str) -> AccessPath:
        for p in self.paths():
            if p.path_id == path_id:
                return p
        raise KeyError(f"{self.format_name} has no path {path_id!r}")

    def union_branches(self) -> List[str]:
        return union_branches(self.paths())

    def runtime(self, path_id: str) -> PathRuntime:
        """Enumeration runtime for one path."""
        raise NotImplementedError

    def axis_range(self, axis_name: str) -> Optional[Tuple[int, int]]:
        """Half-open value range of a (possibly post-map) axis when it is
        known from the shape alone: logical rows are [0, m), columns [0, n).
        Formats with mapped axes (DIA's d/o) extend this."""
        if axis_name == "r":
            return (0, self.nrows)
        if axis_name == "c":
            return (0, self.ncols)
        return None

    def axis_total(self, axis_name: str) -> Optional[Tuple[int, int]]:
        """The half-open range an *enumeration* of this axis is guaranteed
        to visit in full, for every prefix — or None when the enumeration
        only visits stored coordinates (a compressed axis).

        The plan builder uses this to decide whether a statement with no
        stored data on a dimension can be fused into its enumeration (the
        enumeration must be *total* over the statement's instances, or some
        instances would silently never execute).  Default: only interval
        axes that the format declares total (overridden per format)."""
        return None

    def bounds(self) -> Optional[System]:
        """Optional annotation constraining stored coordinates (e.g.
        ``c <= r`` for a lower-triangular matrix); over variables "r","c".
        Used to discharge guards the stored structure already implies.
        (Paper Section 2: "Enumeration bounds ... conveyed to the compiler
        using a pragma".)"""
        return getattr(self, "_bounds", None)

    def annotate_bounds(self, system: System) -> "SparseFormat":
        """Attach an enumeration-bounds annotation (returns self)."""
        self._bounds = system
        return self

    def annotate_triangular(self, kind: str) -> "SparseFormat":
        """Convenience bounds annotation: 'lower' (c <= r) or 'upper'
        (r <= c)."""
        from repro.polyhedra.linexpr import LinExpr
        from repro.polyhedra.system import Constraint, GE

        r = LinExpr.variable("r")
        c = LinExpr.variable("c")
        if kind == "lower":
            sys_ = System([Constraint(r - c, GE)])
        elif kind == "upper":
            sys_ = System([Constraint(c - r, GE)])
        else:
            raise ValueError(f"kind must be 'lower' or 'upper', got {kind!r}")
        return self.annotate_bounds(sys_)

    # -- reference oracles --------------------------------------------------
    # Per-element loop implementations of the data plane, retained verbatim
    # when the vectorized paths replaced them (PR 5).  They are the ground
    # truth of the differential suite (tests/test_vectorized_differential)
    # and the baseline of benchmarks/bench_convert.py — never call them on
    # the hot path.

    def _reference_to_coo_arrays(self):
        """Loop oracle for :meth:`to_coo_arrays` (overridden per format)."""
        raise NotImplementedError

    def _reference_to_dense(self) -> np.ndarray:
        """Loop oracle for :meth:`to_dense`: element-wise scatter of the
        loop-extracted triples."""
        rows, cols, vals = self._reference_to_coo_arrays()
        out = np.zeros(self.shape)
        for r, c, v in zip(rows, cols, vals):
            out[int(r), int(c)] = float(v)
        return out

    # -- misc -----------------------------------------------------------------
    def __repr__(self):
        return f"<{self.format_name} {self.nrows}x{self.ncols}, nnz={self.nnz}>"


def coo_dedup_sort(rows, cols, vals, shape, order: str = "row") -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize COO triples: sum duplicates, sort row-major or
    column-major, validate bounds.  Shared by the concrete constructors.

    Already-canonical input (strictly increasing keys, the common case for
    triples coming out of another format's ``to_coo_arrays``) is detected
    with one O(nnz) comparison and skips the sort entirely."""
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    vals = np.asarray(vals, dtype=np.float64).ravel()
    if not (rows.shape == cols.shape == vals.shape):
        raise ValueError("rows/cols/vals length mismatch")
    m, n = shape
    if rows.size:
        if rows.min() < 0 or rows.max() >= m or cols.min() < 0 or cols.max() >= n:
            raise ValueError("COO indices out of bounds for shape")
    if order == "row":
        keys = rows * n + cols
    elif order == "col":
        keys = cols * m + rows
    else:
        raise ValueError(f"unknown order {order!r}")
    if keys.size == 0 or bool(np.all(keys[1:] > keys[:-1])):
        # already canonical: skip the sort; copy so the constructed format
        # never aliases caller-owned arrays (the sorted path's fancy
        # indexing used to guarantee that)
        return rows.copy(), cols.copy(), vals.copy()
    perm = np.argsort(keys, kind="stable")
    rows, cols, vals, keys = rows[perm], cols[perm], vals[perm], keys[perm]
    if keys.size and np.any(keys[1:] == keys[:-1]):
        uniq, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(uniq.size)
        np.add.at(summed, inverse, vals)
        first = np.searchsorted(keys, uniq)
        rows, cols, vals = rows[first], cols[first], summed
    return rows, cols, vals


def coo_contract(rows: np.ndarray, cols: np.ndarray,
                 vals: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply the ``to_coo_arrays`` output contract: int64 indices and a
    C-contiguous value array (no copy when the input already complies)."""
    return (np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            np.ascontiguousarray(vals))


def csr_rowptr(rows: np.ndarray, nrows: int) -> np.ndarray:
    """Row-pointer array from sorted row indices in O(nnz): a bincount
    followed by an in-place cumulative sum."""
    rowptr = np.zeros(nrows + 1, dtype=np.int64)
    if rows.size:
        rowptr[1:] = np.bincount(rows, minlength=nrows)
    np.cumsum(rowptr, out=rowptr)
    return rowptr

"""Modified Sparse Row storage (MSR): the diagonal stored separately from a
CSR structure holding the off-diagonal entries.

This is the paper's aggregation example (Section 2: "a format in which the
diagonal elements are stored separately from the off-diagonal ones"):

    ( map{i |-> r, i |-> c : i -> v} )  U  ( r -> c -> v )

Enumerating the matrix requires enumerating *both* structures (the Union
rule); the compiler handles this by splitting each statement that references
the matrix into one copy per branch (paper Section 4).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    PathRuntime,
    SparseFormat,
    coo_contract,
    coo_dedup_sort,
    csr_rowptr,
)
from repro.formats.views import (
    Axis,
    BINARY,
    INCREASING,
    MapTerm,
    Nest,
    Term,
    Union,
    Value,
    interval_axis,
)
from repro.polyhedra.linexpr import LinExpr


class MsrDiagRuntime(PathRuntime):
    def __init__(self, fmt: "MsrMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        for i in range(self.fmt.ndiag):
            yield (i,), i

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        (i,) = keys
        return i if 0 <= i < self.fmt.ndiag else None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.ndiag)

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.dvals[prefix[0]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.dvals[prefix[0]] = value


class MsrOffRuntime(PathRuntime):
    def __init__(self, fmt: "MsrMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        fmt = self.fmt
        if step == 0:
            for r in range(fmt.nrows):
                yield (r,), r
        else:
            (r,) = prefix
            for jj in range(int(fmt.rowptr[r]), int(fmt.rowptr[r + 1])):
                yield (int(fmt.colind[jj]),), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        fmt = self.fmt
        if step == 0:
            (r,) = keys
            return r if 0 <= r < fmt.nrows else None
        (r,) = prefix
        (c,) = keys
        lo, hi = int(fmt.rowptr[r]), int(fmt.rowptr[r + 1])
        jj = int(np.searchsorted(fmt.colind[lo:hi], c)) + lo
        if jj < hi and fmt.colind[jj] == c:
            return jj
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.nrows) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class MsrMatrix(SparseFormat):
    """MSR: ``dvals`` (the full main diagonal, length min(m, n)) plus CSR
    arrays (``rowptr``/``colind``/``values``) holding strictly off-diagonal
    entries."""

    format_name = "msr"

    def __init__(self, dvals: np.ndarray, rowptr: np.ndarray, colind: np.ndarray,
                 values: np.ndarray, shape: Tuple[int, int]):
        super().__init__(shape)
        self.dvals = np.asarray(dvals, dtype=np.float64)
        self.rowptr = np.asarray(rowptr, dtype=np.int64)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.dvals.size != self.ndiag:
            raise ValueError("dvals must have min(m, n) entries")
        if self.rowptr.size != self.nrows + 1:
            raise ValueError("rowptr must have nrows+1 entries")
        if np.any(self.colind == np.repeat(np.arange(self.nrows), np.diff(self.rowptr))):
            raise ValueError("off-diagonal structure contains diagonal entries")

    @property
    def ndiag(self) -> int:
        return min(self.nrows, self.ncols)

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.dvals.size + self.values.size)

    def get(self, r: int, c: int) -> float:
        if r == c:
            return float(self.dvals[r])
        lo, hi = int(self.rowptr[r]), int(self.rowptr[r + 1])
        jj = int(np.searchsorted(self.colind[lo:hi], c)) + lo
        if jj < hi and self.colind[jj] == c:
            return float(self.values[jj])
        return 0.0

    def set(self, r: int, c: int, v: float) -> None:
        if r == c:
            self.dvals[r] = v
            return
        lo, hi = int(self.rowptr[r]), int(self.rowptr[r + 1])
        jj = int(np.searchsorted(self.colind[lo:hi], c)) + lo
        if jj < hi and self.colind[jj] == c:
            self.values[jj] = v
            return
        raise KeyError(f"({r},{c}) is not stored (fill is not supported)")

    def to_coo_arrays(self):
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), np.diff(self.rowptr))
        di = np.arange(self.ndiag, dtype=np.int64)
        return coo_contract(np.concatenate([di, rows]),
                            np.concatenate([di, self.colind]),
                            np.concatenate([self.dvals, self.values]))

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "MsrMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "MsrMatrix":
        m, n = shape
        dvals = np.zeros(min(m, n))
        on_diag = rows == cols
        dvals[rows[on_diag]] = vals[on_diag]
        rows_o, cols_o, vals_o = rows[~on_diag], cols[~on_diag], vals[~on_diag]
        return cls(dvals, csr_rowptr(rows_o, m), cols_o, vals_o, shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "MsrMatrix":
        """Loop oracle: per-element diagonal/off-diagonal routing."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        m, n = shape
        dvals = np.zeros(min(m, n))
        rows_o, cols_o, vals_o = [], [], []
        rowptr = np.zeros(m + 1, dtype=np.int64)
        for r, c, v in zip(rows, cols, vals):
            if int(r) == int(c):
                dvals[int(r)] = float(v)
            else:
                rows_o.append(int(r))
                cols_o.append(int(c))
                vals_o.append(float(v))
                rowptr[int(r) + 1] += 1
        np.cumsum(rowptr, out=rowptr)
        return cls(dvals, rowptr, np.array(cols_o, dtype=np.int64),
                   np.array(vals_o, dtype=np.float64), shape)

    def _reference_to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for i in range(self.ndiag):
            rows.append(i)
            cols.append(i)
            vals.append(float(self.dvals[i]))
        for r in range(self.nrows):
            for jj in range(int(self.rowptr[r]), int(self.rowptr[r + 1])):
                rows.append(r)
                cols.append(int(self.colind[jj]))
                vals.append(float(self.values[jj]))
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        i = LinExpr.variable("i")
        diag = MapTerm({"r": i, "c": i}, Nest(interval_axis("i"), Value()))
        off = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        return Union(diag, off)

    def path_ids(self) -> Optional[List[str]]:
        return ["diag", "off"]

    def runtime(self, path_id: str) -> PathRuntime:
        if path_id == "diag":
            return MsrDiagRuntime(self, self.path(path_id))
        if path_id == "off":
            return MsrOffRuntime(self, self.path(path_id))
        raise KeyError(path_id)

    def axis_range(self, axis_name: str) -> Optional[Tuple[int, int]]:
        if axis_name == "i":
            return (0, self.ndiag)
        return super().axis_range(axis_name)

    def axis_total(self, axis_name):
        if axis_name == "i":
            return (0, self.ndiag)
        if axis_name == "r":
            return (0, self.nrows)
        return None

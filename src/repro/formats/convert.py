"""Conversions between formats (COO triples are the interchange)."""

from __future__ import annotations

from typing import Dict, Type, Union

import numpy as np

from repro.formats.base import SparseFormat
from repro.formats.bsr import BsrMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix
from repro.formats.jad import JadMatrix
from repro.formats.msr import MsrMatrix
from repro.formats.sym import SymMatrix

FORMATS: Dict[str, Type[SparseFormat]] = {
    "dense": DenseMatrix,
    "coo": CooMatrix,
    "csr": CsrMatrix,
    "csc": CscMatrix,
    "dia": DiaMatrix,
    "ell": EllMatrix,
    "jad": JadMatrix,
    "bsr": BsrMatrix,
    "msr": MsrMatrix,
    "sym": SymMatrix,
}


def convert(matrix: SparseFormat, target: Union[str, Type[SparseFormat]], **kwargs) -> SparseFormat:
    """Convert ``matrix`` to another format, preserving stored values.

    ``kwargs`` are forwarded to the target constructor (e.g.
    ``block_size=4`` for BSR).  Conversion goes through COO triples, the
    least-common-denominator representation every format can produce and
    consume.
    """
    cls = FORMATS[target] if isinstance(target, str) else target
    rows, cols, vals = matrix.to_coo_arrays()
    out = cls.from_coo(rows, cols, vals, matrix.shape, **kwargs)
    if matrix.bounds() is not None:
        out.annotate_bounds(matrix.bounds())
    return out


def as_format(a, target: Union[str, Type[SparseFormat]], **kwargs) -> SparseFormat:
    """Build a format instance from a dense ndarray, a scipy sparse matrix,
    or another format instance."""
    cls = FORMATS[target] if isinstance(target, str) else target
    if isinstance(a, SparseFormat):
        return convert(a, cls, **kwargs)
    if isinstance(a, np.ndarray):
        if cls is BsrMatrix:
            return BsrMatrix.from_dense(a, **kwargs)
        return cls.from_dense(a, **kwargs)
    # assume scipy sparse
    return cls.from_scipy(a, **kwargs) if not kwargs else convert(
        CooMatrix.from_scipy(a), cls, **kwargs
    )

"""Conversions between formats.

COO triples remain the least-common-denominator interchange every format
can produce and consume, but the common routes no longer pay for it
(PR 5's vectorized data plane):

- converting a format to itself (no constructor kwargs) returns the
  instance unchanged;
- CSR and CSC expose their triples already sorted, so targets are built
  through ``_from_canonical_coo`` — the construction core that skips the
  canonicalization sort entirely;
- CSR <-> CSC transposes the compression axis with a single stable
  argsort of the minor index (no key building, no dedup pass).

Everything else goes ``to_coo_arrays`` -> ``from_coo``, where
:func:`repro.formats.base.coo_dedup_sort` detects already-canonical
triples in O(nnz) and skips its sort.

Instrumentation (namespace ``format.convert``): the ``format.convert``
phase timer brackets every conversion; counters tick per route
(``identity`` / ``fastpath`` / ``via_coo``) and per ordered format pair
(``format.convert.csr->ell`` ...).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.formats.base import SparseFormat, csr_rowptr
from repro.formats.bsr import BsrMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix
from repro.formats.jad import JadMatrix
from repro.formats.msr import MsrMatrix
from repro.formats.sym import SymMatrix
from repro.instrument import INSTR

FORMATS: Dict[str, Type[SparseFormat]] = {
    "dense": DenseMatrix,
    "coo": CooMatrix,
    "csr": CsrMatrix,
    "csc": CscMatrix,
    "dia": DiaMatrix,
    "ell": EllMatrix,
    "jad": JadMatrix,
    "bsr": BsrMatrix,
    "msr": MsrMatrix,
    "sym": SymMatrix,
}

#: module switch for the direct conversion routes; the benchmark harness
#: flips it off to time the status-quo COO interchange with the same code
_FAST_PATHS_ENABLED = True


@contextmanager
def fast_paths(enabled: bool):
    """Scoped enable/disable of the direct conversion routes (used by
    benchmarks to time the generic COO interchange)."""
    global _FAST_PATHS_ENABLED
    prev = _FAST_PATHS_ENABLED
    _FAST_PATHS_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FAST_PATHS_ENABLED = prev


def _csr_canonical_triples(A: CsrMatrix) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Row-major canonical triples straight from the CSR arrays, or None
    when the instance violates the sorted-unique invariant (hand-built
    arrays are not validated by the constructor — fall back then)."""
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), np.diff(A.rowptr))
    keys = rows * A.ncols + A.colind
    if keys.size and not bool(np.all(keys[1:] > keys[:-1])):
        return None
    return rows, A.colind, A.values


def _csc_canonical_triples(A: CscMatrix) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Row-major canonical triples from CSC arrays: one stable argsort of
    the row index re-sorts the column-major entries row-major (columns
    stay increasing within each row because the input was column-sorted)."""
    cols = np.repeat(np.arange(A.ncols, dtype=np.int64), np.diff(A.colptr))
    keys = cols * A.nrows + A.rowind
    if keys.size and not bool(np.all(keys[1:] > keys[:-1])):
        return None
    perm = np.argsort(A.rowind, kind="stable")
    return A.rowind[perm], cols[perm], A.values[perm]


def _csr_to_csc(A: CsrMatrix) -> Optional[CscMatrix]:
    """Direct CSR -> CSC: stable argsort of the column index alone."""
    trip = _csr_canonical_triples(A)
    if trip is None:
        return None
    rows, cols, vals = trip
    perm = np.argsort(cols, kind="stable")
    return CscMatrix(csr_rowptr(cols[perm], A.ncols), rows[perm], vals[perm],
                     A.shape)


def _csc_to_csr(A: CscMatrix) -> Optional[CsrMatrix]:
    """Direct CSC -> CSR: stable argsort of the row index alone."""
    trip = _csc_canonical_triples(A)
    if trip is None:
        return None
    rows, cols, vals = trip  # already re-sorted row-major by the extractor
    return CsrMatrix(csr_rowptr(rows, A.nrows), cols.copy(), vals.copy(),
                     A.shape)


#: (source class, target class) -> direct conversion; a path returning
#: None signals "invariant not met, take the generic route"
_DIRECT: Dict[Tuple[type, type], object] = {
    (CsrMatrix, CscMatrix): _csr_to_csc,
    (CscMatrix, CsrMatrix): _csc_to_csr,
}

def _dense_canonical_triples(A: DenseMatrix):
    # np.nonzero scans row-major, so these triples are born canonical
    return A.to_coo_arrays()


#: sources whose triples come out canonical without a sort; every target's
#: ``_from_canonical_coo`` can consume them directly
_CANONICAL_SOURCES: Dict[type, object] = {
    CsrMatrix: _csr_canonical_triples,
    CscMatrix: _csc_canonical_triples,
    DenseMatrix: _dense_canonical_triples,
}


def _try_fast_path(matrix: SparseFormat, cls: Type[SparseFormat],
                   kwargs: Dict) -> Optional[SparseFormat]:
    direct = _DIRECT.get((type(matrix), cls))
    if direct is not None and not kwargs:
        return direct(matrix)
    extract = _CANONICAL_SOURCES.get(type(matrix))
    if extract is None:
        return None
    trip = extract(matrix)
    if trip is None:
        return None
    rows, cols, vals = trip
    return cls._from_canonical_coo(rows, cols, vals, matrix.shape, **kwargs)


def convert(matrix: SparseFormat, target: Union[str, Type[SparseFormat]], **kwargs) -> SparseFormat:
    """Convert ``matrix`` to another format, preserving stored values.

    ``kwargs`` are forwarded to the target constructor (e.g.
    ``block_size=4`` for BSR).  Converting to the matrix's own class with
    no kwargs returns the instance itself (bounds annotation and all);
    otherwise the cheapest available route is taken — a direct fast path
    when one exists, the COO interchange when not.
    """
    cls = FORMATS[target] if isinstance(target, str) else target
    if cls is type(matrix) and not kwargs:
        INSTR.count("format.convert.identity")
        return matrix
    with INSTR.phase("format.convert"):
        INSTR.count(f"format.convert.{matrix.format_name}->{cls.format_name}")
        out = None
        if _FAST_PATHS_ENABLED:
            out = _try_fast_path(matrix, cls, kwargs)
        if out is None:
            INSTR.count("format.convert.via_coo")
            rows, cols, vals = matrix.to_coo_arrays()
            out = cls.from_coo(rows, cols, vals, matrix.shape, **kwargs)
        else:
            INSTR.count("format.convert.fastpath")
    if matrix.bounds() is not None:
        out.annotate_bounds(matrix.bounds())
    return out


def as_format(a, target: Union[str, Type[SparseFormat]], **kwargs) -> SparseFormat:
    """Build a format instance from a dense ndarray, a scipy sparse matrix,
    or another format instance."""
    cls = FORMATS[target] if isinstance(target, str) else target
    if isinstance(a, SparseFormat):
        return convert(a, cls, **kwargs)
    if isinstance(a, np.ndarray):
        if cls is BsrMatrix:
            return BsrMatrix.from_dense(a, **kwargs)
        return cls.from_dense(a, **kwargs)
    # scipy sparse: one conversion — from_scipy forwards the constructor
    # kwargs, so there is no scipy -> COO -> target double hop
    return cls.from_scipy(a, **kwargs)

"""Matrix file I/O.

- MatrixMarket coordinate files (the format the Harwell–Boeing collection is
  distributed in via math.nist.gov/MatrixMarket, paper Section 5): a plain
  reader/writer independent of scipy, so real inputs like ``can_1072`` can be
  dropped into the benchmark harness when available.
- A tiny ``.coo`` text format (one ``r c v`` triple per line) for test
  fixtures.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.formats.coo import CooMatrix

PathLike = Union[str, Path]


def read_matrix_market(path_or_text: Union[PathLike, io.StringIO]) -> CooMatrix:
    """Read a MatrixMarket coordinate file (real/integer/pattern, general or
    symmetric) into a :class:`CooMatrix`."""
    if isinstance(path_or_text, io.StringIO):
        lines = path_or_text.getvalue().splitlines()
    else:
        lines = Path(path_or_text).read_text().splitlines()
    if not lines:
        raise ValueError("empty MatrixMarket input")
    header = lines[0].strip().lower().split()
    if len(header) < 5 or header[0] != "%%matrixmarket" or header[1] != "matrix":
        raise ValueError(f"not a MatrixMarket header: {lines[0]!r}")
    storage, field, symmetry = header[2], header[3], header[4]
    if storage != "coordinate":
        raise ValueError(f"only coordinate storage is supported, got {storage!r}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    body = [ln for ln in lines[1:] if ln.strip() and not ln.lstrip().startswith("%")]
    if not body:
        raise ValueError("missing size line")
    m, n, nz = (int(x) for x in body[0].split())
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for ln in body[1:]:
        parts = ln.split()
        r, c = int(parts[0]) - 1, int(parts[1]) - 1
        v = 1.0 if field == "pattern" else float(parts[2])
        rows.append(r)
        cols.append(c)
        vals.append(v)
        if symmetry != "general" and r != c:
            rows.append(c)
            cols.append(r)
            vals.append(-v if symmetry == "skew-symmetric" else v)
    if len([1 for ln in body[1:]]) != nz:
        raise ValueError(f"entry count mismatch: header says {nz}, found {len(body) - 1}")
    return CooMatrix.from_coo(np.array(rows), np.array(cols), np.array(vals), (m, n))


def write_matrix_market(matrix, path: PathLike) -> None:
    """Write any format instance as a general real coordinate MatrixMarket
    file."""
    rows, cols, vals = matrix.to_coo_arrays()
    with open(path, "w") as f:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        f.write(f"% written by repro (Bernoulli sparse compiler reproduction)\n")
        f.write(f"{matrix.nrows} {matrix.ncols} {len(vals)}\n")
        for r, c, v in zip(rows, cols, vals):
            f.write(f"{int(r) + 1} {int(c) + 1} {v:.17g}\n")


def read_coo_text(path: PathLike, shape: Tuple[int, int]) -> CooMatrix:
    """Read the tiny test-fixture format: lines of ``r c v`` (0-based)."""
    rows, cols, vals = [], [], []
    for ln in Path(path).read_text().splitlines():
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        r, c, v = ln.split()
        rows.append(int(r))
        cols.append(int(c))
        vals.append(float(v))
    return CooMatrix.from_coo(np.array(rows, dtype=np.int64),
                              np.array(cols, dtype=np.int64),
                              np.array(vals), shape)

"""Dense storage as a (degenerate) format: ``(r x c) -> v``.

Useful both as a baseline and to check that the sparse compiler degenerates
gracefully: compiling a kernel "for" the dense format must reproduce the
original dense loop nest.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import PathRuntime, SparseFormat, coo_contract
from repro.formats.views import Cross, Term, Value, interval_axis


class DenseRuntime(PathRuntime):
    """Runtime for either traversal order of a dense matrix."""

    def __init__(self, fmt: "DenseMatrix", path, axis_order: Tuple[str, str]):
        self.fmt = fmt
        self.path = path
        self.axis_order = axis_order  # ("r","c") for rowmajor

    def _extent(self, axis: str) -> int:
        return self.fmt.nrows if axis == "r" else self.fmt.ncols

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        axis = self.axis_order[step]
        for v in range(self._extent(axis)):
            yield (v,), v

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        axis = self.axis_order[step]
        (v,) = keys
        return v if 0 <= v < self._extent(axis) else None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self._extent(self.axis_order[step]))

    def _rc(self, prefix: Tuple) -> Tuple[int, int]:
        d = dict(zip(self.axis_order, prefix))
        return d["r"], d["c"]

    def get(self, prefix: Tuple) -> float:
        r, c = self._rc(prefix)
        return float(self.fmt.data[r, c])

    def set(self, prefix: Tuple, value: float) -> None:
        r, c = self._rc(prefix)
        self.fmt.data[r, c] = value


class DenseMatrix(SparseFormat):
    """A dense 2-D array wearing the format interface."""

    format_name = "dense"

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("DenseMatrix needs a 2-D array")
        super().__init__(data.shape)
        self.data = data

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    def get(self, r: int, c: int) -> float:
        return float(self.data[r, c])

    def set(self, r: int, c: int, v: float) -> None:
        self.data[r, c] = v

    def to_coo_arrays(self):
        rows, cols = np.nonzero(self.data)
        return coo_contract(rows, cols, self.data[rows, cols])

    def to_dense(self) -> np.ndarray:
        return self.data.copy()

    def copy(self) -> "DenseMatrix":
        return DenseMatrix(self.data.copy())

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "DenseMatrix":
        from repro.formats.base import coo_dedup_sort

        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls._from_canonical_coo(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "DenseMatrix":
        out = np.zeros(shape)
        out[rows, cols] = vals
        return cls(out)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "DenseMatrix":
        """Loop oracle: element-wise scatter into the dense array."""
        from repro.formats.base import coo_dedup_sort

        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        out = np.zeros(shape)
        for r, c, v in zip(rows, cols, vals):
            out[int(r), int(c)] = float(v)
        return cls(out)

    def _reference_to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for r in range(self.nrows):
            for c in range(self.ncols):
                if self.data[r, c] != 0.0:
                    rows.append(r)
                    cols.append(c)
                    vals.append(float(self.data[r, c]))
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "DenseMatrix":
        return cls(np.array(a, dtype=np.float64))

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        return Cross([interval_axis("r"), interval_axis("c")], Value())

    def path_ids(self) -> Optional[List[str]]:
        return ["rowmajor", "colmajor"]

    def runtime(self, path_id: str) -> PathRuntime:
        p = self.path(path_id)
        order = ("r", "c") if path_id == "rowmajor" else ("c", "r")
        return DenseRuntime(self, p, order)

    def axis_total(self, axis_name):
        if axis_name == "r":
            return (0, self.nrows)
        if axis_name == "c":
            return (0, self.ncols)
        return None

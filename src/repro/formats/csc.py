"""Compressed Sparse Column storage (CSC): ``c -> r -> v`` — the transpose
of CSR (paper Section 1): indexed access to columns, sorted rows within each
column.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import PathRuntime, SparseFormat, coo_contract, coo_dedup_sort
from repro.formats.views import Axis, BINARY, INCREASING, Nest, Term, Value, interval_axis


class CscRuntime(PathRuntime):
    def __init__(self, fmt: "CscMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        if step == 0:
            for c in range(self.fmt.ncols):
                yield (c,), c
        else:
            (c,) = prefix
            lo, hi = int(self.fmt.colptr[c]), int(self.fmt.colptr[c + 1])
            rowind = self.fmt.rowind
            for jj in range(lo, hi):
                yield (int(rowind[jj]),), jj

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        if step == 0:
            (c,) = keys
            return c if 0 <= c < self.fmt.ncols else None
        (c,) = prefix
        (r,) = keys
        lo, hi = int(self.fmt.colptr[c]), int(self.fmt.colptr[c + 1])
        jj = int(np.searchsorted(self.fmt.rowind[lo:hi], r)) + lo
        if jj < hi and self.fmt.rowind[jj] == r:
            return jj
        return None

    def interval(self, step: int, prefix: Tuple) -> Optional[Tuple[int, int]]:
        return (0, self.fmt.ncols) if step == 0 else None

    def get(self, prefix: Tuple) -> float:
        return float(self.fmt.values[prefix[1]])

    def set(self, prefix: Tuple, value: float) -> None:
        self.fmt.values[prefix[1]] = value


class CscMatrix(SparseFormat):
    """CSC: ``colptr`` (n+1), ``rowind`` (nnz, sorted within each column),
    ``values`` (nnz)."""

    format_name = "csc"

    def __init__(self, colptr: np.ndarray, rowind: np.ndarray, values: np.ndarray,
                 shape: Tuple[int, int]):
        super().__init__(shape)
        self.colptr = np.asarray(colptr, dtype=np.int64)
        self.rowind = np.asarray(rowind, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.colptr.size != self.ncols + 1:
            raise ValueError("colptr must have ncols+1 entries")
        if self.rowind.shape != self.values.shape:
            raise ValueError("rowind/values length mismatch")
        if self.colptr[0] != 0 or self.colptr[-1] != self.rowind.size:
            raise ValueError("colptr endpoints inconsistent with nnz")
        if np.any(np.diff(self.colptr) < 0):
            raise ValueError("colptr must be non-decreasing")

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def col_slice(self, c: int) -> Tuple[int, int]:
        return int(self.colptr[c]), int(self.colptr[c + 1])

    def get(self, r: int, c: int) -> float:
        lo, hi = self.col_slice(c)
        jj = int(np.searchsorted(self.rowind[lo:hi], r)) + lo
        if jj < hi and self.rowind[jj] == r:
            return float(self.values[jj])
        return 0.0

    def set(self, r: int, c: int, v: float) -> None:
        lo, hi = self.col_slice(c)
        jj = int(np.searchsorted(self.rowind[lo:hi], r)) + lo
        if jj < hi and self.rowind[jj] == r:
            self.values[jj] = v
            return
        raise KeyError(f"({r},{c}) is not stored (fill is not supported)")

    def to_coo_arrays(self):
        cols = np.repeat(np.arange(self.ncols, dtype=np.int64), np.diff(self.colptr))
        return coo_contract(self.rowind.copy(), cols, self.values.copy())

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CscMatrix":
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="col")
        return cls._build_colmajor(rows, cols, vals, shape)

    @classmethod
    def _build_colmajor(cls, rows, cols, vals, shape) -> "CscMatrix":
        """Construction core for triples already canonical *column*-major."""
        from repro.formats.base import csr_rowptr

        return cls(csr_rowptr(cols, shape[1]), rows.copy(), vals.copy(), shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "CscMatrix":
        # row-major canonical in: one stable sort on the column alone
        # re-sorts column-major (rows stay increasing within each column
        # because the input was row-sorted) — no key building, no dedup
        perm = np.argsort(cols, kind="stable")
        return cls._build_colmajor(rows[perm], cols[perm], vals[perm], shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "CscMatrix":
        """Loop oracle: per-element column counting."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="col")
        m, n = shape
        colptr = np.zeros(n + 1, dtype=np.int64)
        for c in cols:
            colptr[int(c) + 1] += 1
        np.cumsum(colptr, out=colptr)
        return cls(colptr, rows, vals, shape)

    def _reference_to_coo_arrays(self):
        cols = np.empty(self.nnz, dtype=np.int64)
        for c in range(self.ncols):
            for jj in range(int(self.colptr[c]), int(self.colptr[c + 1])):
                cols[jj] = c
        return self.rowind.copy(), cols, self.values.copy()

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        return Nest(
            interval_axis("c"),
            Nest(Axis("r", INCREASING, BINARY), Value()),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["cols"]

    def runtime(self, path_id: str) -> PathRuntime:
        return CscRuntime(self, self.path(path_id))

    def axis_total(self, axis_name):
        # every column index in [0, n) is enumerated, including empty ones
        return (0, self.ncols) if axis_name == "c" else None

"""Co-ordinate storage (COO): ``<r, c> -> v`` (paper Figure 1).

Three parallel arrays hold the non-zeros and their positions; entries may be
in arbitrary order, so the only efficient operation is a flat enumeration of
all entries, yielding the row and column *jointly* and unordered.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.formats.base import PathRuntime, SparseFormat, coo_contract, coo_dedup_sort
from repro.formats.views import Axis, Joint, LINEAR, Term, UNORDERED, Value


class CooRuntime(PathRuntime):
    def __init__(self, fmt: "CooMatrix", path):
        self.fmt = fmt
        self.path = path

    def enumerate(self, step: int, prefix: Tuple) -> Iterator[Tuple[Tuple[int, ...], object]]:
        rows, cols = self.fmt.rows, self.fmt.cols
        for k in range(len(rows)):
            yield (int(rows[k]), int(cols[k])), k

    def search(self, step: int, prefix: Tuple, keys: Tuple[int, ...]) -> Optional[object]:
        r, c = keys
        rows, cols = self.fmt.rows, self.fmt.cols
        hits = np.nonzero((rows == r) & (cols == c))[0]
        return int(hits[0]) if hits.size else None

    def get(self, prefix: Tuple) -> float:
        (k,) = prefix
        return float(self.fmt.vals[k])

    def set(self, prefix: Tuple, value: float) -> None:
        (k,) = prefix
        self.fmt.vals[k] = value


class CooMatrix(SparseFormat):
    """Coordinate storage.  Entries are stored in whatever order they were
    given (after duplicate summing); nothing is sorted, exactly because the
    format makes no ordering promise."""

    format_name = "coo"

    def __init__(self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                 shape: Tuple[int, int]):
        super().__init__(shape)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ValueError("rows/cols/vals length mismatch")

    # -- high-level API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def get(self, r: int, c: int) -> float:
        hits = np.nonzero((self.rows == r) & (self.cols == c))[0]
        return float(self.vals[hits[0]]) if hits.size else 0.0

    def set(self, r: int, c: int, v: float) -> None:
        hits = np.nonzero((self.rows == r) & (self.cols == c))[0]
        if not hits.size:
            raise KeyError(f"({r},{c}) is not stored (fill is not supported)")
        self.vals[hits[0]] = v

    def to_coo_arrays(self):
        return coo_contract(self.rows.copy(), self.cols.copy(), self.vals.copy())

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CooMatrix":
        # canonicalize duplicates but deliberately *shuffle* nothing: COO
        # preserves whatever order canonicalization produces
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        return cls(rows, cols, vals, shape)

    @classmethod
    def _from_canonical_coo(cls, rows, cols, vals, shape) -> "CooMatrix":
        return cls(rows.copy(), cols.copy(), vals.copy(), shape)

    @classmethod
    def _reference_from_coo(cls, rows, cols, vals, shape) -> "CooMatrix":
        """Loop oracle: element-by-element append of the canonical triples."""
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        r_out, c_out, v_out = [], [], []
        for r, c, v in zip(rows, cols, vals):
            r_out.append(int(r))
            c_out.append(int(c))
            v_out.append(float(v))
        return cls(np.array(r_out, dtype=np.int64), np.array(c_out, dtype=np.int64),
                   np.array(v_out, dtype=np.float64), shape)

    def _reference_to_coo_arrays(self):
        rows = np.array([int(r) for r in self.rows], dtype=np.int64)
        cols = np.array([int(c) for c in self.cols], dtype=np.int64)
        vals = np.array([float(v) for v in self.vals], dtype=np.float64)
        return rows, cols, vals

    # -- low-level API -------------------------------------------------------
    def view(self) -> Term:
        return Joint(
            [Axis("r", UNORDERED, LINEAR), Axis("c", UNORDERED, LINEAR)],
            Value(),
        )

    def path_ids(self) -> Optional[List[str]]:
        return ["flat"]

    def runtime(self, path_id: str) -> PathRuntime:
        return CooRuntime(self, self.path(path_id))

"""Lightweight timing helpers for the benchmark harness and examples.

pytest-benchmark drives the real measurements; this module provides the
repeat-and-take-best pattern used by the example scripts, following the
"no optimization without measuring" workflow from the scientific-Python
optimization guide.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple


def best_of(fn: Callable[[], object], repeats: int = 5, min_time: float = 0.01) -> float:
    """Return the best wall-clock time (seconds) of ``repeats`` runs of
    ``fn``, auto-batching very fast calls so each sample lasts at least
    ``min_time`` seconds.

    The calibration pass includes the very first (cold: imports, lazy
    codegen, cache warm-up) call, so its time is discarded whenever we can
    afford to (``repeats > 1``) and ``repeats`` fresh samples are taken
    instead."""
    # calibrate batch size
    batch = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(batch):
            fn()
        dt = time.perf_counter() - t0
        if dt >= min_time or batch >= 1 << 20:
            break
        batch *= 2
    if repeats > 1:
        best = float("inf")   # calibration sample (cold start) discarded
        samples = repeats
    else:
        best = dt / batch
        samples = 0
    for _ in range(samples):
        t0 = time.perf_counter()
        for _ in range(batch):
            fn()
        dt = (time.perf_counter() - t0) / batch
        best = min(best, dt)
    return best


def mflops(flops: int, seconds: float) -> float:
    """MFLOPS given a flop count and a time."""
    if seconds <= 0:
        return float("inf")
    return flops / seconds / 1e6


def time_and_rate(fn: Callable[[], object], flops: int, repeats: int = 5) -> Tuple[float, float]:
    """(seconds, MFLOPS) for ``fn``."""
    sec = best_of(fn, repeats=repeats)
    return sec, mflops(flops, sec)

"""Tiny validation helpers used across the package for argument checking.

These raise early with readable messages instead of letting bad inputs
propagate into the exact-arithmetic core.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check(cond: bool, message: str, exc: Type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``cond`` holds."""
    if not cond:
        raise exc(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Type-check ``value``; return it for chaining."""
    if not isinstance(value, types):
        tn = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {tn}, got {type(value).__name__}")
    return value


def require_positive(value: int, name: str) -> int:
    """Require a positive integer."""
    require_type(value, int, name)
    check(value > 0, f"{name} must be positive, got {value}")
    return value

"""Small shared utilities: exact linear algebra over rationals, validation,
deterministic ordering helpers, and timing.

These are deliberately dependency-light; the polyhedral machinery in
:mod:`repro.polyhedra` builds on :mod:`repro.util.fractions_linalg`.
"""

from repro.util.fractions_linalg import (
    FractionMatrix,
    rank,
    row_reduce,
    solve_exact,
    nullspace,
)
from repro.util.validation import check, require_type, require_positive

__all__ = [
    "FractionMatrix",
    "rank",
    "row_reduce",
    "solve_exact",
    "nullspace",
    "check",
    "require_type",
    "require_positive",
]

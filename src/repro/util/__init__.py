"""Small shared utilities: exact linear algebra over rationals, validation,
deterministic ordering helpers, timing, and warn-and-default parsing of
``REPRO_*`` numeric environment variables.

These are deliberately dependency-light; the polyhedral machinery in
:mod:`repro.polyhedra` builds on :mod:`repro.util.fractions_linalg`.
"""

from repro.util.env import EnvVarWarning, env_float, env_int
from repro.util.fractions_linalg import (
    FractionMatrix,
    rank,
    row_reduce,
    solve_exact,
    nullspace,
)
from repro.util.validation import check, require_type, require_positive

__all__ = [
    "FractionMatrix",
    "rank",
    "row_reduce",
    "solve_exact",
    "nullspace",
    "check",
    "require_type",
    "require_positive",
    "EnvVarWarning",
    "env_float",
    "env_int",
]

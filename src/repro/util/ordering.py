"""Deterministic ordering helpers.

The search enumerates combinatorial spaces; stable, deterministic iteration
order keeps compilations reproducible across runs (important both for tests
and for comparing costs between candidates).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def lex_compare(a: Sequence, b: Sequence) -> int:
    """Lexicographic three-way compare: -1, 0, +1."""
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    if len(a) < len(b):
        return -1
    if len(a) > len(b):
        return 1
    return 0


def interleavings(groups: Sequence[Sequence[T]]) -> Iterator[Tuple[T, ...]]:
    """All interleavings of the given sequences that preserve each sequence's
    internal order (used to enumerate dimension orders respecting per-format
    nesting constraints, paper Section 4.3)."""
    groups = [list(g) for g in groups if g]
    if not groups:
        yield ()
        return
    total = sum(len(g) for g in groups)
    # choose, for each position, which group supplies the next element
    indices = list(range(len(groups)))
    pattern_pool = []
    for gi, g in enumerate(groups):
        pattern_pool.extend([gi] * len(g))
    seen = set()
    for pattern in itertools.permutations(pattern_pool, total):
        if pattern in seen:
            continue
        seen.add(pattern)
        cursors = [0] * len(groups)
        out: List[T] = []
        for gi in pattern:
            out.append(groups[gi][cursors[gi]])
            cursors[gi] += 1
        yield tuple(out)


def stable_unique(items: Iterable[T]) -> List[T]:
    """Order-preserving dedup for hashable items."""
    seen = set()
    out: List[T] = []
    for x in items:
        if x not in seen:
            seen.add(x)
            out.append(x)
    return out

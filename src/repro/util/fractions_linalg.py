"""Exact linear algebra over :class:`fractions.Fraction`.

The compiler's legality and redundancy analyses (paper Sections 3-4) must be
exact: floating-point rank decisions would make "is this product-space
dimension redundant?" (Figure 7 of the paper) and "is this embedding legal?"
nondeterministic near ties.  Everything here therefore works on exact
rationals.  Matrices are small (tens of rows/columns), so the cubic cost of
fraction-exact Gaussian elimination is irrelevant.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

Row = List[Fraction]


def _frac(x) -> Fraction:
    """Coerce ints / Fractions / strings to Fraction (floats are rejected:
    exactness is the point)."""
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, str):
        return Fraction(x)
    raise TypeError(f"exact arithmetic requires int/Fraction, got {type(x).__name__}")


class FractionMatrix:
    """A dense matrix of exact rationals with the handful of operations the
    compiler needs: row reduction, rank, linear solves, and incremental
    row-dependence queries.
    """

    def __init__(self, rows: Iterable[Iterable] = ()):  # noqa: D401
        self.rows: List[Row] = [[_frac(x) for x in r] for r in rows]
        if self.rows:
            w = len(self.rows[0])
            for r in self.rows:
                if len(r) != w:
                    raise ValueError("ragged rows in FractionMatrix")

    # -- basic protocol -------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.rows), len(self.rows[0]) if self.rows else 0)

    def __getitem__(self, ij):
        i, j = ij
        return self.rows[i][j]

    def __eq__(self, other) -> bool:
        return isinstance(other, FractionMatrix) and self.rows == other.rows

    def __repr__(self) -> str:
        body = "; ".join(" ".join(str(x) for x in r) for r in self.rows)
        return f"FractionMatrix[{body}]"

    def copy(self) -> "FractionMatrix":
        out = FractionMatrix()
        out.rows = [list(r) for r in self.rows]
        return out

    def append_row(self, row: Iterable) -> None:
        row = [_frac(x) for x in row]
        if self.rows and len(row) != len(self.rows[0]):
            raise ValueError("row width mismatch")
        self.rows.append(row)

    def transpose(self) -> "FractionMatrix":
        m, n = self.shape
        return FractionMatrix([[self.rows[i][j] for i in range(m)] for j in range(n)])

    def matvec(self, v: Sequence) -> Row:
        v = [_frac(x) for x in v]
        m, n = self.shape
        if len(v) != n:
            raise ValueError("dimension mismatch in matvec")
        return [sum((self.rows[i][j] * v[j] for j in range(n)), Fraction(0)) for i in range(m)]


def row_reduce(mat: FractionMatrix) -> Tuple[FractionMatrix, List[int]]:
    """Return (RREF of ``mat``, pivot column indices).  Zero rows are kept at
    the bottom (they matter for callers that track row provenance)."""
    m = mat.copy()
    nrows, ncols = m.shape
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        # find pivot
        piv = None
        for i in range(r, nrows):
            if m.rows[i][c] != 0:
                piv = i
                break
        if piv is None:
            continue
        m.rows[r], m.rows[piv] = m.rows[piv], m.rows[r]
        pv = m.rows[r][c]
        m.rows[r] = [x / pv for x in m.rows[r]]
        for i in range(nrows):
            if i != r and m.rows[i][c] != 0:
                f = m.rows[i][c]
                m.rows[i] = [a - f * b for a, b in zip(m.rows[i], m.rows[r])]
        pivots.append(c)
        r += 1
        if r == nrows:
            break
    return m, pivots


def rank(mat: FractionMatrix) -> int:
    """Exact rank."""
    _, pivots = row_reduce(mat)
    return len(pivots)


def solve_exact(A: FractionMatrix, b: Sequence) -> Optional[Row]:
    """Solve ``A x = b`` exactly.  Returns one solution (free variables set
    to 0) or None if inconsistent."""
    m, n = A.shape
    b = [_frac(x) for x in b]
    if len(b) != m:
        raise ValueError("dimension mismatch in solve_exact")
    aug = FractionMatrix([A.rows[i] + [b[i]] for i in range(m)]) if m else FractionMatrix()
    red, pivots = row_reduce(aug)
    # inconsistent iff a pivot lands in the augmented column
    if pivots and pivots[-1] == n:
        return None
    x: Row = [Fraction(0)] * n
    for r, c in enumerate(pivots):
        x[c] = red.rows[r][n]
    return x


def nullspace(A: FractionMatrix) -> List[Row]:
    """Basis of the (right) nullspace of A, exact."""
    m, n = A.shape
    if n == 0:
        return []
    red, pivots = row_reduce(A)
    free = [c for c in range(n) if c not in pivots]
    basis: List[Row] = []
    for fc in free:
        v: Row = [Fraction(0)] * n
        v[fc] = Fraction(1)
        for r, pc in enumerate(pivots):
            v[pc] = -red.rows[r][fc]
        basis.append(v)
    return basis


class IncrementalRank:
    """Incrementally decide, row by row, whether each new row is linearly
    dependent on the rows seen so far.

    This is exactly the redundant-dimension test of the paper (Figure 7):
    "If a row of the G matrix is a linear combination of preceding rows, the
    corresponding dimension of the product space is redundant."

    ``add(row)`` returns ``(dependent, combination)`` where ``combination``
    maps *original* row indices to coefficients expressing the new row in
    terms of previously *independent* rows (empty dict for the zero row).
    """

    def __init__(self, width: int):
        self.width = width
        # reduced independent rows, paired with their combination over
        # original independent-row indices
        self._rows: List[Tuple[Row, dict]] = []
        self._count = 0

    def add(self, row: Sequence) -> Tuple[bool, Optional[dict]]:
        row = [_frac(x) for x in row]
        if len(row) != self.width:
            raise ValueError("row width mismatch")
        idx = self._count
        self._count += 1
        work = list(row)
        # combo over ORIGINAL row indices such that, at every step,
        #   work == original_row - sum_k combo[k] * original_k
        combo: dict = {}
        for base, base_combo in self._rows:
            lead = next((j for j, x in enumerate(base) if x != 0), None)
            if lead is None:
                continue
            if work[lead] != 0:
                f = work[lead] / base[lead]
                work = [a - f * b for a, b in zip(work, base)]
                # base == sum_k base_combo[k] * original_k
                for k, c in base_combo.items():
                    combo[k] = combo.get(k, Fraction(0)) + f * c
        if all(x == 0 for x in work):
            return True, {k: v for k, v in combo.items() if v != 0}
        # independent: store reduced row with its expansion over originals:
        #   work == original_idx - sum_k combo[k] * original_k
        expansion = {idx: Fraction(1)}
        for k, c in combo.items():
            if c != 0:
                expansion[k] = expansion.get(k, Fraction(0)) - c
        self._rows.append((work, expansion))
        return False, None

    @property
    def rank(self) -> int:
        return len(self._rows)

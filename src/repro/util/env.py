"""Warn-and-default parsing for ``REPRO_*`` numeric environment variables.

Configuration knobs read from the environment (worker counts, timeouts,
cache capacities, daemon queue depths) must never take the process down:
a typo in ``REPRO_COMPILE_WORKERS=eight`` used to surface as a bare
``ValueError`` deep inside :func:`repro.core.service.compile_many`, far
from the actual mistake.  :func:`env_int` / :func:`env_float` centralize
the policy instead: a malformed or out-of-range value emits one
:class:`EnvVarWarning` naming the variable and the offending text, bumps
the ``env.parse_errors`` counter, and falls back to the documented
default — the library behaves exactly as if the variable were unset.

An unset or empty variable returns the default silently (that is the
normal "not configured" state, not an error).
"""

from __future__ import annotations

import math
import os
import shlex
import warnings
from typing import List, Optional, Sequence, Union

__all__ = ["EnvVarWarning", "env_int", "env_float", "env_flags", "env_choice"]


class EnvVarWarning(UserWarning):
    """A ``REPRO_*`` environment variable was malformed and was ignored."""


def _warn(name: str, raw: str, problem: str, default) -> None:
    from repro.instrument import INSTR

    INSTR.count("env.parse_errors")
    INSTR.count(f"env.parse_errors.{name}")
    warnings.warn(
        f"ignoring {name}={raw!r}: {problem}; using default {default!r}",
        EnvVarWarning,
        stacklevel=4,
    )


def _env_number(name: str, default, convert, what: str,
                minimum: Optional[Union[int, float]]):
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = convert(raw.strip())
    except (ValueError, OverflowError):
        _warn(name, raw, f"not {what}", default)
        return default
    if isinstance(value, float) and math.isnan(value):
        _warn(name, raw, f"not {what}", default)
        return default
    if minimum is not None and value < minimum:
        _warn(name, raw, f"must be >= {minimum}", default)
        return default
    return value


def env_int(name: str, default: int, *,
            minimum: Optional[int] = None) -> int:
    """``int(os.environ[name])`` with warn-and-default error handling.

    Returns ``default`` when the variable is unset, empty, non-integer
    text, or below ``minimum`` (the latter two warn with
    :class:`EnvVarWarning` and count ``env.parse_errors``)."""
    return _env_number(name, default, int, "an integer", minimum)


def env_float(name: str, default: float, *,
              minimum: Optional[float] = None) -> float:
    """``float(os.environ[name])`` with warn-and-default error handling.

    Same contract as :func:`env_int`; NaN is treated as malformed."""
    return _env_number(name, default, float, "a number", minimum)


def env_flags(name: str) -> List[str]:
    """Shell-style flag list from ``os.environ[name]`` (``shlex.split``).

    Unset or empty returns ``[]`` silently; an unparseable value (e.g. an
    unterminated quote) warns with :class:`EnvVarWarning`, counts
    ``env.parse_errors``, and returns ``[]`` — exactly as if the variable
    were unset."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return []
    try:
        return shlex.split(raw)
    except ValueError as e:
        _warn(name, raw, f"not a parseable flag list ({e})", [])
        return []


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """``os.environ[name]`` restricted to an allowed set of values.

    Unset or empty returns ``default`` silently; any other value outside
    ``choices`` warns with :class:`EnvVarWarning`, counts
    ``env.parse_errors``, and returns ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if value not in choices:
        _warn(name, raw, f"must be one of {sorted(choices)}", default)
        return default
    return value

"""Hand-written per-format sparse BLAS kernels (the NIST-C analog).

Each routine is written exactly as a library author would write it for that
format: raw loops over the format's index arrays, no abstraction layers.
These are the baselines the compiler-generated code must be structurally
equivalent to (paper Section 5), and the "NIST C" series of the Figure
12/13 reproduction.

All kernels are pure Python by design: the comparison of interest is
generated-Python vs. hand-written-Python vs. generic-Python (same idiom,
same interpreter), which preserves the paper's *relative* claims.
"""

from __future__ import annotations

import numpy as np

from repro.formats.bsr import BsrMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix
from repro.formats.jad import JadMatrix
from repro.formats.msr import MsrMatrix


# ---------------------------------------------------------------------------
# MVM: y = A x
# ---------------------------------------------------------------------------

def mvm_csr(A: CsrMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    rowptr, colind, values = A.rowptr, A.colind, A.values
    for r in range(A.nrows):
        acc = 0.0
        for jj in range(rowptr[r], rowptr[r + 1]):
            acc += values[jj] * x[colind[jj]]
        y[r] = acc
    return y


def mvm_csc(A: CscMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    colptr, rowind, values = A.colptr, A.rowind, A.values
    for r in range(A.nrows):
        y[r] = 0.0
    for c in range(A.ncols):
        xc = x[c]
        for jj in range(colptr[c], colptr[c + 1]):
            y[rowind[jj]] += values[jj] * xc
    return y


def mvm_coo(A: CooMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    rows, cols, vals = A.rows, A.cols, A.vals
    for r in range(A.nrows):
        y[r] = 0.0
    for k in range(A.nnz):
        y[rows[k]] += vals[k] * x[cols[k]]
    return y


def mvm_dia(A: DiaMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    for r in range(A.nrows):
        y[r] = 0.0
    m, n = A.shape
    for k in range(A.diags.size):
        d = int(A.diags[k])
        lo = max(0, -d)
        hi = min(n, m - d)
        row = A.data[k]
        for o in range(lo, hi):
            y[d + o] += row[o] * x[o]
    return y


def mvm_ell(A: EllMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    colind, data, rowlen = A.colind, A.data, A.rowlen
    for r in range(A.nrows):
        acc = 0.0
        for kk in range(rowlen[r]):
            acc += data[r, kk] * x[colind[r, kk]]
        y[r] = acc
    return y


def mvm_jad(A: JadMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Diagonal-major JAD MVM: the access pattern the format exists for."""
    iperm, dptr, colind, values = A.iperm, A.dptr, A.colind, A.values
    for r in range(A.nrows):
        y[r] = 0.0
    for d in range(A.ndiags):
        lo, hi = dptr[d], dptr[d + 1]
        for jj in range(lo, hi):
            rr = jj - lo
            y[iperm[rr]] += values[jj] * x[colind[jj]]
    return y


def mvm_bsr(A: BsrMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    s = A.block_size
    indptr, blockind, data = A.indptr, A.blockind, A.data
    for r in range(A.nrows):
        y[r] = 0.0
    for rb in range(A.block_rows):
        r0 = rb * s
        for kk in range(indptr[rb], indptr[rb + 1]):
            c0 = int(blockind[kk]) * s
            blk = data[kk]
            for ri in range(s):
                acc = 0.0
                for ci in range(s):
                    acc += blk[ri, ci] * x[c0 + ci]
                y[r0 + ri] += acc
    return y


def mvm_sym(A, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Symmetric MVM over the stored lower triangle: each off-diagonal
    entry contributes twice (the classic symmetric SpMV)."""
    rowptr, colind, values = A.rowptr, A.colind, A.values
    for r in range(A.nrows):
        y[r] = 0.0
    for r in range(A.nrows):
        acc = 0.0
        xr = x[r]
        for jj in range(rowptr[r], rowptr[r + 1]):
            c = colind[jj]
            v = values[jj]
            acc += v * x[c]
            if c != r:
                y[c] += v * xr
        y[r] += acc
    return y


def mvm_msr(A: MsrMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    dvals, rowptr, colind, values = A.dvals, A.rowptr, A.colind, A.values
    for r in range(A.nrows):
        acc = dvals[r] * x[r] if r < A.ndiag else 0.0
        for jj in range(rowptr[r], rowptr[r + 1]):
            acc += values[jj] * x[colind[jj]]
        y[r] = acc
    return y


# ---------------------------------------------------------------------------
# Transposed MVM: y = A^T x
# ---------------------------------------------------------------------------

def mvm_t_csr(A: CsrMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    rowptr, colind, values = A.rowptr, A.colind, A.values
    for c in range(A.ncols):
        y[c] = 0.0
    for r in range(A.nrows):
        xr = x[r]
        for jj in range(rowptr[r], rowptr[r + 1]):
            y[colind[jj]] += values[jj] * xr
    return y


def mvm_t_csc(A: CscMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    colptr, rowind, values = A.colptr, A.rowind, A.values
    for c in range(A.ncols):
        acc = 0.0
        for jj in range(colptr[c], colptr[c + 1]):
            acc += values[jj] * x[rowind[jj]]
        y[c] = acc
    return y


# ---------------------------------------------------------------------------
# SpMM: Y = A X (X a dense n×k panel) — the per-entry inner loop becomes a
# panel-row axpy
# ---------------------------------------------------------------------------

def mm_csr(A: CsrMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    rowptr, colind, values = A.rowptr, A.colind, A.values
    for r in range(A.nrows):
        Y[r] = 0.0
        for jj in range(rowptr[r], rowptr[r + 1]):
            Y[r] += values[jj] * X[colind[jj]]
    return Y


def mm_csc(A: CscMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    colptr, rowind, values = A.colptr, A.rowind, A.values
    Y[...] = 0.0
    for c in range(A.ncols):
        xc = X[c]
        for jj in range(colptr[c], colptr[c + 1]):
            Y[rowind[jj]] += values[jj] * xc
    return Y


def mm_t_csr(A: CsrMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    rowptr, colind, values = A.rowptr, A.colind, A.values
    Y[...] = 0.0
    for r in range(A.nrows):
        xr = X[r]
        for jj in range(rowptr[r], rowptr[r + 1]):
            Y[colind[jj]] += values[jj] * xr
    return Y


def mm_t_csc(A: CscMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    colptr, rowind, values = A.colptr, A.rowind, A.values
    for c in range(A.ncols):
        Y[c] = 0.0
        for jj in range(colptr[c], colptr[c + 1]):
            Y[c] += values[jj] * X[rowind[jj]]
    return Y


# ---------------------------------------------------------------------------
# SpGEMM: C = A B with both operands sparse — the two-pass row-wise
# (Gustavson) algorithm.  Unlike every kernel above, the output's sparsity
# pattern is *computed*, not declared: the symbolic pass sizes each output
# row by merging A's row against the referenced rows of B, the numeric
# pass fills colind/values through a reused accumulator.
# ---------------------------------------------------------------------------

#: auto accumulator heuristic: the dense accumulator allocates (and the
#: symbolic pass stamps) O(ncols) state; when the matrix is so wide that
#: this dwarfs the actual flop count, the per-row hash accumulator wins
_DENSE_ACC_FLOP_FACTOR = 16
_DENSE_ACC_MIN_COLS = 4096


def _spgemm_accumulator(A: CsrMatrix, B: CsrMatrix, accumulator: str) -> str:
    """Resolve ``accumulator="auto"`` (see :func:`spgemm_csr_csr`)."""
    if accumulator != "auto":
        if accumulator not in ("dense", "hash"):
            raise ValueError(f"accumulator must be 'auto', 'dense' or "
                             f"'hash', got {accumulator!r}")
        return accumulator
    nmults = 0
    b_len = np.diff(B.rowptr)
    for jj in range(A.colind.size):
        nmults += int(b_len[A.colind[jj]])
    wide = B.ncols > max(_DENSE_ACC_MIN_COLS,
                         _DENSE_ACC_FLOP_FACTOR * max(1, nmults))
    return "hash" if wide else "dense"


def spgemm_csr_csr(A: CsrMatrix, B: CsrMatrix,
                   accumulator: str = "auto") -> CsrMatrix:
    """Two-pass row-wise SpGEMM for the CSR×CSR pair.

    Pass 1 (symbolic) computes the output row pointer: for each row of A,
    the union of the B rows its column indices select, counted through
    the accumulator.  Pass 2 (numeric) re-runs the merge with value
    accumulation and writes ``colind``/``values``, columns sorted within
    each row — the output is canonical CSR, byte-identical to what the
    generic enumeration tier constructs.

    ``accumulator="dense"`` uses an O(ncols) marker/value pair reused
    across rows (stamp generations, no per-row clearing) — the classic
    Gustavson layout.  ``"hash"`` uses a per-row dict, the right trade
    for very wide matrices where O(ncols) state dwarfs the flop count;
    ``"auto"`` picks between them from ``ncols`` vs. the multiply count.
    Numerical zeros produced by cancellation stay stored entries (the
    pattern is structure-driven), matching every other tier bit-for-bit.
    """
    if A.ncols != B.nrows:
        raise ValueError(f"spgemm: inner dimensions do not conform: "
                         f"A is {A.nrows}x{A.ncols}, B is "
                         f"{B.nrows}x{B.ncols}")
    mode = _spgemm_accumulator(A, B, accumulator)
    m, n = A.nrows, B.ncols
    a_ptr, a_col, a_val = A.rowptr, A.colind, A.values
    b_ptr, b_col, b_val = B.rowptr, B.colind, B.values

    rowptr = np.zeros(m + 1, dtype=np.int64)
    row_cols: list = [None] * m

    # -- symbolic pass: the output pattern row by row --------------------
    if mode == "dense":
        marker = np.full(n, -1, dtype=np.int64)
        for i in range(m):
            cols_i = []
            for jj in range(a_ptr[i], a_ptr[i + 1]):
                j = a_col[jj]
                for kk in range(b_ptr[j], b_ptr[j + 1]):
                    c = b_col[kk]
                    if marker[c] != i:
                        marker[c] = i
                        cols_i.append(int(c))
            cols_i.sort()
            row_cols[i] = cols_i
            rowptr[i + 1] = rowptr[i] + len(cols_i)
    else:
        for i in range(m):
            seen = set()
            for jj in range(a_ptr[i], a_ptr[i + 1]):
                j = a_col[jj]
                for kk in range(b_ptr[j], b_ptr[j + 1]):
                    seen.add(int(b_col[kk]))
            cols_i = sorted(seen)
            row_cols[i] = cols_i
            rowptr[i + 1] = rowptr[i] + len(cols_i)

    nnz = int(rowptr[m])
    colind = np.zeros(nnz, dtype=np.int64)
    values = np.zeros(nnz, dtype=np.float64)

    # -- numeric pass: fill colind/values through the accumulator --------
    if mode == "dense":
        acc = np.zeros(n, dtype=np.float64)
        for i in range(m):
            cols_i = row_cols[i]
            if not cols_i:
                continue
            for c in cols_i:
                acc[c] = 0.0
            for jj in range(a_ptr[i], a_ptr[i + 1]):
                j = a_col[jj]
                v = a_val[jj]
                for kk in range(b_ptr[j], b_ptr[j + 1]):
                    acc[b_col[kk]] += v * b_val[kk]
            lo = int(rowptr[i])
            for t, c in enumerate(cols_i):
                colind[lo + t] = c
                values[lo + t] = acc[c]
    else:
        for i in range(m):
            cols_i = row_cols[i]
            if not cols_i:
                continue
            acc_d: dict = {c: 0.0 for c in cols_i}
            for jj in range(a_ptr[i], a_ptr[i + 1]):
                j = a_col[jj]
                v = a_val[jj]
                for kk in range(b_ptr[j], b_ptr[j + 1]):
                    acc_d[int(b_col[kk])] += v * b_val[kk]
            lo = int(rowptr[i])
            for t, c in enumerate(cols_i):
                colind[lo + t] = c
                values[lo + t] = acc_d[c]

    return CsrMatrix(rowptr, colind, values, (m, n))


#: (A format, B format) -> specialized sparse×sparse kernel returning the
#: product as a CSR instance with computed structure
SPGEMM = {
    ("csr", "csr"): spgemm_csr_csr,
}


# ---------------------------------------------------------------------------
# Triangular solve: b := L^{-1} b (lower) / b := U^{-1} b (upper)
# ---------------------------------------------------------------------------

def ts_lower_csr(L: CsrMatrix, b: np.ndarray) -> np.ndarray:
    """Row-oriented forward substitution — the CSR TS of the NIST C library
    (paper Figure 8's structure)."""
    rowptr, colind, values = L.rowptr, L.colind, L.values
    for r in range(L.nrows):
        acc = b[r]
        diag = 0.0
        for jj in range(rowptr[r], rowptr[r + 1]):
            c = colind[jj]
            if c < r:
                acc -= values[jj] * b[c]
            elif c == r:
                diag = values[jj]
        b[r] = acc / diag
    return b


def ts_lower_csc(L: CscMatrix, b: np.ndarray) -> np.ndarray:
    """Column-oriented forward substitution (paper Figure 5's structure)."""
    colptr, rowind, values = L.colptr, L.rowind, L.values
    for c in range(L.ncols):
        lo, hi = colptr[c], colptr[c + 1]
        diag = 0.0
        for jj in range(lo, hi):
            if rowind[jj] == c:
                diag = values[jj]
                break
        b[c] /= diag
        bc = b[c]
        for jj in range(lo, hi):
            r = rowind[jj]
            if r > c:
                b[r] -= values[jj] * bc
    return b


def ts_lower_jad(L: JadMatrix, b: np.ndarray) -> np.ndarray:
    """Row-oriented JAD forward substitution through the inverse
    permutation — the hand-written equivalent of paper Figure 9."""
    ipermi, dptr, colind, values, rowcnt = (
        L.ipermi, L.dptr, L.colind, L.values, L.rowcnt)
    for r in range(L.nrows):
        rr = ipermi[r]
        acc = b[r]
        diag = 0.0
        for d in range(rowcnt[rr]):
            jj = dptr[d] + rr
            c = colind[jj]
            if c < r:
                acc -= values[jj] * b[c]
            elif c == r:
                diag = values[jj]
        b[r] = acc / diag
    return b


def ts_lower_msr(L: MsrMatrix, b: np.ndarray) -> np.ndarray:
    dvals, rowptr, colind, values = L.dvals, L.rowptr, L.colind, L.values
    for r in range(L.nrows):
        acc = b[r]
        for jj in range(rowptr[r], rowptr[r + 1]):
            c = colind[jj]
            if c < r:
                acc -= values[jj] * b[c]
        b[r] = acc / dvals[r]
    return b


def ts_upper_csr(U: CsrMatrix, b: np.ndarray) -> np.ndarray:
    rowptr, colind, values = U.rowptr, U.colind, U.values
    for r in range(U.nrows - 1, -1, -1):
        acc = b[r]
        diag = 0.0
        for jj in range(rowptr[r], rowptr[r + 1]):
            c = colind[jj]
            if c > r:
                acc -= values[jj] * b[c]
            elif c == r:
                diag = values[jj]
        b[r] = acc / diag
    return b


def ts_upper_csc(U: CscMatrix, b: np.ndarray) -> np.ndarray:
    colptr, rowind, values = U.colptr, U.rowind, U.values
    for c in range(U.ncols - 1, -1, -1):
        lo, hi = colptr[c], colptr[c + 1]
        diag = 0.0
        for jj in range(lo, hi):
            if rowind[jj] == c:
                diag = values[jj]
        b[c] /= diag
        bc = b[c]
        for jj in range(lo, hi):
            r = rowind[jj]
            if r < c:
                b[r] -= values[jj] * bc
    return b


def ts_upper_jad(U: JadMatrix, b: np.ndarray) -> np.ndarray:
    ipermi, dptr, colind, values, rowcnt = (
        U.ipermi, U.dptr, U.colind, U.values, U.rowcnt)
    for r in range(U.nrows - 1, -1, -1):
        rr = ipermi[r]
        acc = b[r]
        diag = 0.0
        for d in range(rowcnt[rr]):
            jj = dptr[d] + rr
            c = colind[jj]
            if c > r:
                acc -= values[jj] * b[c]
            elif c == r:
                diag = values[jj]
        b[r] = acc / diag
    return b


MVM = {
    "csr": mvm_csr,
    "csc": mvm_csc,
    "coo": mvm_coo,
    "dia": mvm_dia,
    "ell": mvm_ell,
    "jad": mvm_jad,
    "bsr": mvm_bsr,
    "msr": mvm_msr,
    "sym": mvm_sym,
}

MVM_T = {
    "csr": mvm_t_csr,
    "csc": mvm_t_csc,
}

MM = {
    "csr": mm_csr,
    "csc": mm_csc,
}

MM_T = {
    "csr": mm_t_csr,
    "csc": mm_t_csc,
}

TS_LOWER = {
    "csr": ts_lower_csr,
    "csc": ts_lower_csc,
    "jad": ts_lower_jad,
    "msr": ts_lower_msr,
}

TS_UPPER = {
    "csr": ts_upper_csr,
    "csc": ts_upper_csc,
    "jad": ts_upper_jad,
}

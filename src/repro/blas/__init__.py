"""Sparse BLAS layer: the baselines of the paper's evaluation.

- :mod:`repro.blas.specialized` — hand-written per-format kernels, raw
  index-array loops: the analog of the NIST Sparse BLAS *C* library the
  paper compares against (specialized, one routine per format/operation).
- :mod:`repro.blas.generic_` — format-agnostic kernels going through the
  abstract element/enumeration interface: the analog of the less
  specialized NIST *Fortran* library (a single code for many cases, paying
  for the generality).
- :mod:`repro.blas.dense_ref` — NumPy oracles for correctness checks.
- :mod:`repro.blas.api` — uniform dispatch used by the solvers.
"""

from repro.blas.api import (
    mm,
    mm_t,
    mvm,
    mvm_t,
    spgemm,
    spgemm_triples,
    ts_lower_solve,
    ts_upper_solve,
)
from repro.blas import specialized, generic_, dense_ref

__all__ = [
    "mm",
    "mm_t",
    "mvm",
    "mvm_t",
    "spgemm",
    "spgemm_triples",
    "ts_lower_solve",
    "ts_upper_solve",
    "specialized",
    "generic_",
    "dense_ref",
]

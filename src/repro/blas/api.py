"""Uniform BLAS dispatch: specialized kernel when one exists for the
format, generic fallback otherwise.  This is the layer the iterative
solvers (:mod:`repro.solvers`) call — the PETSc-style arrangement the paper
describes in Section 1 (format-independent iterative methods linked against
format-specific BLAS).

**Kernel handles** — the module also keeps a kernel-handle cache so code
written against this plain functional API transparently rides the solver
fast path.  When a :class:`~repro.solvers.context.SolverContext` binds a
compiled (possibly native) kernel to a matrix instance, it registers the
bound entry point here; later ``mvm(A, x)`` calls for that same instance
dispatch straight through the handle instead of the per-call table walk.
Handles are stored on the instance itself (attribute
``_kernel_handles``), so their lifetime is exactly the matrix's lifetime
and the cache needs no eviction policy.  ``blas.handle.hits`` counts the
dispatches served this way.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.blas import generic_, specialized
from repro.formats.base import SparseFormat
from repro.formats.csr import CsrMatrix
from repro.instrument import INSTR

#: instance attribute holding the per-matrix handle dict {op: callable}
_HANDLE_ATTR = "_kernel_handles"


def register_kernel_handle(A: SparseFormat, op: str, fn: Callable) -> None:
    """Publish a bound kernel entry point for one operation of one matrix
    instance.  ``fn`` has signature ``fn(x, y) -> y`` for ``mvm`` /
    ``mvm_t``, ``fn(X, Y) -> Y`` (2-D panels) for ``spmm`` / ``spmm_t``,
    and ``fn(b) -> b`` (in-place) for ``ts_lower`` / ``ts_upper``."""
    handles = getattr(A, _HANDLE_ATTR, None)
    if handles is None:
        handles = {}
        setattr(A, _HANDLE_ATTR, handles)
    handles[op] = fn


def kernel_handle(A: SparseFormat, op: str) -> Optional[Callable]:
    """The registered handle for ``(A, op)``, or None."""
    handles = getattr(A, _HANDLE_ATTR, None)
    if handles is None:
        return None
    return handles.get(op)


def clear_kernel_handles(A: SparseFormat) -> None:
    """Drop every handle registered for ``A`` (mainly for tests)."""
    if getattr(A, _HANDLE_ATTR, None) is not None:
        delattr(A, _HANDLE_ATTR)


def _alloc2(shape, A: SparseFormat, x: np.ndarray) -> np.ndarray:
    """A fresh output array of any shape in the promoted dtype of the
    operands — ``np.zeros(shape)`` alone would silently force float64 onto
    float32/int workloads (and break native-backend byte parity)."""
    return np.zeros(shape, dtype=np.result_type(A.dtype, x.dtype))


def _alloc(n: int, A: SparseFormat, x: np.ndarray) -> np.ndarray:
    """1-D special case of :func:`_alloc2` (the matvec/solve outputs)."""
    return _alloc2(n, A, x)


def _check_panel(op: str, A: SparseFormat, X: np.ndarray,
                 need_rows: int) -> None:
    """Reject malformed dense panels up front: a 1-D ``X`` used to hit
    ``X.shape[1]`` with a raw IndexError, and a row-count mismatch was
    silently computed with whatever indices happened to stay in range."""
    shape = getattr(X, "shape", None)
    if shape is None or len(shape) != 2:
        raise ValueError(
            f"{op}: X must be a 2-D panel, got shape {shape} "
            f"(operand is {A.nrows}x{A.ncols})")
    if shape[0] != need_rows:
        raise ValueError(
            f"{op}: operand is {A.nrows}x{A.ncols} so the panel needs "
            f"{need_rows} rows, got panel of shape {tuple(shape)}")


def _check_out(op: str, out: np.ndarray, shape, result_dtype) -> None:
    """Validate a caller-provided output: the shape must match and the
    promoted product dtype must be safely representable — writing float64
    products into an int or float32 buffer silently truncated before."""
    if tuple(out.shape) != tuple(shape):
        raise ValueError(
            f"{op}: caller-provided output has shape {tuple(out.shape)}, "
            f"expected {tuple(shape)}")
    if not np.can_cast(result_dtype, out.dtype, casting="safe"):
        raise ValueError(
            f"{op}: writing {np.dtype(result_dtype)} products into a "
            f"caller-provided {out.dtype} output would truncate; pass a "
            f"{np.dtype(result_dtype)} buffer (or omit it)")


def mvm(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A x."""
    if y is None:
        y = _alloc(A.nrows, A, x)
    else:
        _check_out("mvm", y, (A.nrows,), np.result_type(A.dtype, x.dtype))
    h = kernel_handle(A, "mvm")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(x, y)
    return dispatch_mvm(A, x, y)


def mm(A: SparseFormat, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Y = A X with ``X`` a dense ``n × k`` panel (SpMM)."""
    _check_panel("mm", A, X, A.ncols)
    if Y is None:
        Y = _alloc2((A.nrows, X.shape[1]), A, X)
    else:
        _check_out("mm", Y, (A.nrows, X.shape[1]),
                   np.result_type(A.dtype, X.dtype))
    if X.shape[1] == 0:
        return Y  # empty panel: (m, 0) result, nothing to dispatch
    h = kernel_handle(A, "spmm")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(X, Y)
    return dispatch_mm(A, X, Y)


def mm_t(A: SparseFormat, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Y = A^T X with ``X`` a dense ``m × k`` panel."""
    _check_panel("mm_t", A, X, A.nrows)
    if Y is None:
        Y = _alloc2((A.ncols, X.shape[1]), A, X)
    else:
        _check_out("mm_t", Y, (A.ncols, X.shape[1]),
                   np.result_type(A.dtype, X.dtype))
    if X.shape[1] == 0:
        return Y
    h = kernel_handle(A, "spmm_t")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(X, Y)
    return dispatch_mm_t(A, X, Y)


def mvm_t(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A^T x."""
    if y is None:
        y = _alloc(A.ncols, A, x)
    else:
        _check_out("mvm_t", y, (A.ncols,), np.result_type(A.dtype, x.dtype))
    h = kernel_handle(A, "mvm_t")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(x, y)
    return dispatch_mvm_t(A, x, y)


def ts_lower_solve(L: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := L^{-1} b (forward substitution).

    The solve writes quotients: an integer (or narrower-float) ``b``
    cannot hold them.  With ``in_place=False`` the working copy is
    promoted to the result dtype; with ``in_place=True`` a lossy ``b``
    is rejected instead of silently truncated."""
    rt = np.result_type(L.dtype, b.dtype)
    if not in_place:
        b = b.astype(rt, copy=True)
    elif not np.can_cast(rt, b.dtype, casting="safe"):
        raise ValueError(
            f"ts_lower_solve: in-place solve writes {np.dtype(rt)} values "
            f"into a {b.dtype} b, which would truncate; promote b or use "
            f"in_place=False")
    h = kernel_handle(L, "ts_lower")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(b)
    return dispatch_ts_lower(L, b)


def ts_upper_solve(U: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := U^{-1} b (backward substitution).  Same dtype contract as
    :func:`ts_lower_solve`."""
    rt = np.result_type(U.dtype, b.dtype)
    if not in_place:
        b = b.astype(rt, copy=True)
    elif not np.can_cast(rt, b.dtype, casting="safe"):
        raise ValueError(
            f"ts_upper_solve: in-place solve writes {np.dtype(rt)} values "
            f"into a {b.dtype} b, which would truncate; promote b or use "
            f"in_place=False")
    h = kernel_handle(U, "ts_upper")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(b)
    return dispatch_ts_upper(U, b)


# ---------------------------------------------------------------------------
# SpGEMM: C = A B with both operands sparse.  Unlike every operation above,
# the output's sparsity pattern is *computed*, not declared — the paper's
# framework covers kernels whose output structure is given up front, so the
# sparse×sparse product runs through a dedicated three-tier dispatch here:
#
# 1. vectorized NumPy expand-sort-reduce for the CSR×CSR hot case (scipy-
#    free, O(flops) work in array ops);
# 2. the specialized two-pass row-wise kernel table (symbolic pass computes
#    the output row pointer, numeric pass fills colind/values through a
#    dense or hash accumulator);
# 3. generic enumeration over any format pair via ``iter_nonzeros`` + COO
#    dedup into the ``_from_canonical_coo`` construction core;
# 4. a native-C Gustavson two-pass kernel for CSR×CSR
#    (:mod:`repro.blas.spgemm_native`) — requested with ``tier="native"``
#    and falling back to the vectorized tier observably
#    (``spgemm.tier.native_fallbacks`` + NativeBackendWarning) when no
#    toolchain is available.
#
# All tiers produce identical canonical output (sorted rows, sorted
# columns within rows, duplicates summed, cancelled zeros kept) — byte-
# for-byte on integer data, which the differential wall pins.
# ---------------------------------------------------------------------------

def _check_spgemm_operands(A, B) -> None:
    if not isinstance(A, SparseFormat) or not isinstance(B, SparseFormat):
        raise ValueError(
            f"spgemm: both operands must be sparse format instances, got "
            f"{type(A).__name__} and {type(B).__name__}")
    if A.ncols != B.nrows:
        raise ValueError(
            f"spgemm: inner dimensions do not conform: A is "
            f"{A.nrows}x{A.ncols}, B is {B.nrows}x{B.ncols}")


def _spgemm_csr_csr_vectorized(A: CsrMatrix, B: CsrMatrix):
    """Vectorized expand-sort-reduce SpGEMM for CSR×CSR: canonical COO
    triples of ``C = A B`` plus the intermediate-product count, all in
    NumPy array ops (no scipy).

    Symbolic phase: every stored entry of A expands into the stored
    entries of the B row its column selects — segment arithmetic
    (``repeat``/``cumsum``) builds the flat product list, and a
    ``np.unique`` over row-major output keys is exactly the computed
    output pattern.  Numeric phase: one ``np.add.at`` scatter-add of the
    products onto the unique pattern slots."""
    m, n = A.nrows, B.ncols
    with INSTR.phase("spgemm.symbolic"):
        a_rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(A.rowptr))
        counts = (B.rowptr[A.colind + 1] - B.rowptr[A.colind])
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=np.float64), 0
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        bpos = np.repeat(B.rowptr[A.colind], counts) + within
        out_rows = np.repeat(a_rows, counts)
        out_cols = B.colind[bpos]
        keys = out_rows * np.int64(n) + out_cols
        uniq, inverse = np.unique(keys, return_inverse=True)
    with INSTR.phase("spgemm.numeric"):
        prods = np.repeat(A.values, counts) * B.values[bpos]
        vals = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(vals, inverse, prods)
    if n > 0:
        rows, cols = uniq // n, uniq % n
    else:
        rows = cols = uniq
    return rows, cols, vals, total


def spgemm_triples(A: SparseFormat, B: SparseFormat,
                   tier: Optional[str] = None):
    """The computed product structure of ``C = A B`` as canonical COO
    triples ``(rows, cols, vals, nmults)`` — the tier-dispatching core of
    :func:`spgemm`, exposed so callers that want a different packing (or
    just the pattern) skip the format construction.

    ``tier`` forces a specific implementation (``"native"`` /
    ``"vectorized"`` / ``"specialized"`` / ``"generic"``; the
    differential suite and the benchmark compare them); None picks the
    fastest applicable.  The native tier needs CSR operands and a C
    toolchain — with operands of another format it raises like the
    vectorized tier, but a missing/failing toolchain falls back to the
    vectorized tier *observably* (``spgemm.tier.native_fallbacks`` and a
    :class:`~repro.core.backend.NativeBackendWarning`), mirroring the
    compiled-kernel fallback contract."""
    _check_spgemm_operands(A, B)
    both_csr = type(A) is CsrMatrix and type(B) is CsrMatrix
    if tier is None:
        tier = "vectorized" if both_csr else (
            "specialized" if (A.format_name, B.format_name)
            in specialized.SPGEMM else "generic")
    if tier == "native":
        if not both_csr:
            raise ValueError(
                f"spgemm: the native tier needs CSR operands, got "
                f"{A.format_name}x{B.format_name}")
        from repro.blas import spgemm_native

        try:
            out = spgemm_native.spgemm_csr_csr_native(A, B)
            INSTR.count("spgemm.tier.native")
            return out
        except Exception as e:
            from repro.core.backend import native_fallback

            INSTR.count("spgemm.tier.native_fallbacks")
            native_fallback("toolchain", f"spgemm native tier: {e}")
            INSTR.count("spgemm.tier.vectorized")
            return _spgemm_csr_csr_vectorized(A, B)
    if tier == "vectorized":
        if not both_csr:
            raise ValueError(
                f"spgemm: the vectorized tier needs CSR operands, got "
                f"{A.format_name}x{B.format_name}")
        INSTR.count("spgemm.tier.vectorized")
        return _spgemm_csr_csr_vectorized(A, B)
    if tier == "specialized":
        fn = specialized.SPGEMM.get((A.format_name, B.format_name))
        if fn is None:
            raise ValueError(
                f"spgemm: no specialized kernel for the "
                f"{A.format_name}x{B.format_name} pair")
        INSTR.count("spgemm.tier.specialized")
        with INSTR.phase("spgemm.twopass"):
            C = fn(A, B)
        rows = np.repeat(np.arange(C.nrows, dtype=np.int64),
                         np.diff(C.rowptr))
        nmults = int((B.rowptr[A.colind + 1] - B.rowptr[A.colind]).sum()) \
            if type(A) is CsrMatrix and type(B) is CsrMatrix else -1
        return rows, C.colind.copy(), C.values.copy(), nmults
    if tier == "generic":
        INSTR.count("spgemm.tier.generic")
        with INSTR.phase("spgemm.enumerate"):
            return generic_.spgemm_coo(A, B)
    raise ValueError(f"tier must be 'native', 'vectorized', 'specialized' "
                     f"or 'generic', got {tier!r}")


def spgemm(A: SparseFormat, B: SparseFormat,
           out_format: Optional[str] = None,
           tier: Optional[str] = None, **format_kwargs) -> SparseFormat:
    """C = A B with both operands sparse; the output's sparsity pattern
    is computed by the symbolic pass, then packed into ``out_format``.

    ``out_format=None`` packs CSR (the row-major canonical triples drop
    straight into its construction core).  ``out_format="auto"`` chooses
    the output format from the *computed* structure's features
    (:func:`repro.search.format_select.select_output_format`) — the
    selection axis where the winner is the output format, not an input's.
    Any other name packs that format (``format_kwargs`` forwarded, e.g.
    ``block_size`` for BSR); a format that rejects the computed structure
    falls back to CSR observably (``spgemm.output_fallbacks``)."""
    INSTR.count("spgemm.calls")
    rows, cols, vals, _nmults = spgemm_triples(A, B, tier=tier)
    shape = (A.nrows, B.ncols)
    if out_format is None or out_format == "csr":
        return CsrMatrix._from_canonical_coo(rows, cols, vals, shape)
    if out_format == "auto":
        from repro.search.format_select import select_output_format

        choice = select_output_format(rows, cols, shape)
        out_format, format_kwargs = choice.format_name, choice.format_kwargs
    from repro.formats.convert import FORMATS

    cls = FORMATS.get(out_format)
    if cls is None:
        raise ValueError(f"spgemm: unknown output format {out_format!r}")
    try:
        return cls._from_canonical_coo(rows, cols, vals, shape,
                                       **format_kwargs)
    except (ValueError, KeyError):
        # the requested/selected output format does not admit the computed
        # structure (BSR divisibility, SYM symmetry, ...): CSR always does
        INSTR.count("spgemm.output_fallbacks")
        return CsrMatrix._from_canonical_coo(rows, cols, vals, shape)


# -- handle-free dispatch (the pre-context per-call path; also the tier the
#    SolverContext falls back to when an operation has no compiled kernel) --

def dispatch_mvm(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    fn = specialized.MVM.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm(A, x, y)


def dispatch_mvm_t(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    fn = specialized.MVM_T.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm_t(A, x, y)


def dispatch_mm(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    fn = specialized.MM.get(A.format_name)
    if fn is not None:
        return fn(A, X, Y)
    return generic_.mm(A, X, Y)


def dispatch_mm_t(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    fn = specialized.MM_T.get(A.format_name)
    if fn is not None:
        return fn(A, X, Y)
    return generic_.mm_t(A, X, Y)


def dispatch_ts_lower(L: SparseFormat, b: np.ndarray) -> np.ndarray:
    fn = specialized.TS_LOWER.get(L.format_name)
    if fn is not None:
        return fn(L, b)
    return generic_.ts_lower_enum(L, b)


def dispatch_ts_upper(U: SparseFormat, b: np.ndarray) -> np.ndarray:
    fn = specialized.TS_UPPER.get(U.format_name)
    if fn is not None:
        return fn(U, b)
    return generic_.ts_upper(U, b)

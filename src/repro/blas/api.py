"""Uniform BLAS dispatch: specialized kernel when one exists for the
format, generic fallback otherwise.  This is the layer the iterative
solvers (:mod:`repro.solvers`) call — the PETSc-style arrangement the paper
describes in Section 1 (format-independent iterative methods linked against
format-specific BLAS).

**Kernel handles** — the module also keeps a kernel-handle cache so code
written against this plain functional API transparently rides the solver
fast path.  When a :class:`~repro.solvers.context.SolverContext` binds a
compiled (possibly native) kernel to a matrix instance, it registers the
bound entry point here; later ``mvm(A, x)`` calls for that same instance
dispatch straight through the handle instead of the per-call table walk.
Handles are stored on the instance itself (attribute
``_kernel_handles``), so their lifetime is exactly the matrix's lifetime
and the cache needs no eviction policy.  ``blas.handle.hits`` counts the
dispatches served this way.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.blas import generic_, specialized
from repro.formats.base import SparseFormat
from repro.instrument import INSTR

#: instance attribute holding the per-matrix handle dict {op: callable}
_HANDLE_ATTR = "_kernel_handles"


def register_kernel_handle(A: SparseFormat, op: str, fn: Callable) -> None:
    """Publish a bound kernel entry point for one operation of one matrix
    instance.  ``fn`` has signature ``fn(x, y) -> y`` for ``mvm`` /
    ``mvm_t``, ``fn(X, Y) -> Y`` (2-D panels) for ``spmm`` / ``spmm_t``,
    and ``fn(b) -> b`` (in-place) for ``ts_lower`` / ``ts_upper``."""
    handles = getattr(A, _HANDLE_ATTR, None)
    if handles is None:
        handles = {}
        setattr(A, _HANDLE_ATTR, handles)
    handles[op] = fn


def kernel_handle(A: SparseFormat, op: str) -> Optional[Callable]:
    """The registered handle for ``(A, op)``, or None."""
    handles = getattr(A, _HANDLE_ATTR, None)
    if handles is None:
        return None
    return handles.get(op)


def clear_kernel_handles(A: SparseFormat) -> None:
    """Drop every handle registered for ``A`` (mainly for tests)."""
    if getattr(A, _HANDLE_ATTR, None) is not None:
        delattr(A, _HANDLE_ATTR)


def _alloc2(shape, A: SparseFormat, x: np.ndarray) -> np.ndarray:
    """A fresh output array of any shape in the promoted dtype of the
    operands — ``np.zeros(shape)`` alone would silently force float64 onto
    float32/int workloads (and break native-backend byte parity)."""
    return np.zeros(shape, dtype=np.result_type(A.dtype, x.dtype))


def _alloc(n: int, A: SparseFormat, x: np.ndarray) -> np.ndarray:
    """1-D special case of :func:`_alloc2` (the matvec/solve outputs)."""
    return _alloc2(n, A, x)


def mvm(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A x."""
    if y is None:
        y = _alloc(A.nrows, A, x)
    h = kernel_handle(A, "mvm")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(x, y)
    return dispatch_mvm(A, x, y)


def mm(A: SparseFormat, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Y = A X with ``X`` a dense ``n × k`` panel (SpMM)."""
    if Y is None:
        Y = _alloc2((A.nrows, X.shape[1]), A, X)
    h = kernel_handle(A, "spmm")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(X, Y)
    return dispatch_mm(A, X, Y)


def mm_t(A: SparseFormat, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Y = A^T X with ``X`` a dense ``m × k`` panel."""
    if Y is None:
        Y = _alloc2((A.ncols, X.shape[1]), A, X)
    h = kernel_handle(A, "spmm_t")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(X, Y)
    return dispatch_mm_t(A, X, Y)


def mvm_t(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A^T x."""
    if y is None:
        y = _alloc(A.ncols, A, x)
    h = kernel_handle(A, "mvm_t")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(x, y)
    return dispatch_mvm_t(A, x, y)


def ts_lower_solve(L: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := L^{-1} b (forward substitution)."""
    if not in_place:
        b = b.copy()
    h = kernel_handle(L, "ts_lower")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(b)
    return dispatch_ts_lower(L, b)


def ts_upper_solve(U: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := U^{-1} b (backward substitution)."""
    if not in_place:
        b = b.copy()
    h = kernel_handle(U, "ts_upper")
    if h is not None:
        INSTR.count("blas.handle.hits")
        return h(b)
    return dispatch_ts_upper(U, b)


# -- handle-free dispatch (the pre-context per-call path; also the tier the
#    SolverContext falls back to when an operation has no compiled kernel) --

def dispatch_mvm(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    fn = specialized.MVM.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm(A, x, y)


def dispatch_mvm_t(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    fn = specialized.MVM_T.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm_t(A, x, y)


def dispatch_mm(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    fn = specialized.MM.get(A.format_name)
    if fn is not None:
        return fn(A, X, Y)
    return generic_.mm(A, X, Y)


def dispatch_mm_t(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    fn = specialized.MM_T.get(A.format_name)
    if fn is not None:
        return fn(A, X, Y)
    return generic_.mm_t(A, X, Y)


def dispatch_ts_lower(L: SparseFormat, b: np.ndarray) -> np.ndarray:
    fn = specialized.TS_LOWER.get(L.format_name)
    if fn is not None:
        return fn(L, b)
    return generic_.ts_lower_enum(L, b)


def dispatch_ts_upper(U: SparseFormat, b: np.ndarray) -> np.ndarray:
    fn = specialized.TS_UPPER.get(U.format_name)
    if fn is not None:
        return fn(U, b)
    return generic_.ts_upper(U, b)

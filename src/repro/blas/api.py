"""Uniform BLAS dispatch: specialized kernel when one exists for the
format, generic fallback otherwise.  This is the layer the iterative
solvers (:mod:`repro.solvers`) call — the PETSc-style arrangement the paper
describes in Section 1 (format-independent iterative methods linked against
format-specific BLAS)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas import generic_, specialized
from repro.formats.base import SparseFormat


def mvm(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A x."""
    if y is None:
        y = np.zeros(A.nrows)
    fn = specialized.MVM.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm(A, x, y)


def mvm_t(A: SparseFormat, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """y = A^T x."""
    if y is None:
        y = np.zeros(A.ncols)
    fn = specialized.MVM_T.get(A.format_name)
    if fn is not None:
        return fn(A, x, y)
    return generic_.mvm_t(A, x, y)


def ts_lower_solve(L: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := L^{-1} b (forward substitution)."""
    if not in_place:
        b = b.copy()
    fn = specialized.TS_LOWER.get(L.format_name)
    if fn is not None:
        return fn(L, b)
    return generic_.ts_lower_enum(L, b)


def ts_upper_solve(U: SparseFormat, b: np.ndarray, in_place: bool = False) -> np.ndarray:
    """b := U^{-1} b (backward substitution)."""
    if not in_place:
        b = b.copy()
    fn = specialized.TS_UPPER.get(U.format_name)
    if fn is not None:
        return fn(U, b)
    return generic_.ts_upper(U, b)

"""Native-C SpGEMM numeric phase: Gustavson's two-pass algorithm.

The vectorized tier (:func:`repro.blas.api._spgemm_csr_csr_vectorized`)
materializes every intermediate product and sorts them; this module lowers
the classic row-wise dense-marker formulation to C instead — one pass to
count the computed output pattern, one to accumulate values — compiled
and cached through the same machinery as the lowered kernels
(:func:`repro.core.backend.compile_native_function`: artifact digest,
single-flight, disk layer).

Byte-identity: per output entry, every tier produces ``0.0 + p1 + p2 +
...`` with the products in (A-row position, B-row position) ascending
order — the flat expand order of the vectorized tier, the accumulator
order of the specialized tier, and the loop order here.  The marker array
stamps ``phase * m + row`` so the symbolic pass's residue can never alias
a numeric-pass row.  Columns are sorted within each row by an index-only
shell sort; values are then gathered from the dense accumulator, so the
sort never touches (or reorders the production of) floating-point data.

A missing toolchain or failed compile raises; :func:`repro.blas.api`
translates that into an observable fallback onto the vectorized tier.
"""

from __future__ import annotations

import ctypes
import threading
from typing import Optional, Tuple

import numpy as np

from repro.instrument import INSTR

C_SOURCE = """\
#include <stdint.h>

static void _sort_cols(int64_t *a, int64_t n) {
    /* index-only shell sort (Ciura-ish gaps); rows are typically short */
    static const int64_t gaps[] = {301, 132, 57, 23, 10, 4, 1};
    for (int g = 0; g < 7; g++) {
        int64_t gap = gaps[g];
        if (gap >= n) continue;
        for (int64_t i = gap; i < n; i++) {
            int64_t v = a[i], j = i;
            while (j >= gap && a[j - gap] > v) { a[j] = a[j - gap]; j -= gap; }
            a[j] = v;
        }
    }
}

void kernel(int64_t phase, int64_t m, int64_t n,
            const int64_t * restrict a_ptr,
            const int64_t * restrict a_col,
            const double * restrict a_val,
            const int64_t * restrict b_ptr,
            const int64_t * restrict b_col,
            const double * restrict b_val,
            int64_t * restrict marker,
            int64_t * restrict c_ptr,
            int64_t * restrict c_col,
            double * restrict c_acc,
            double * restrict c_val) {
    if (phase == 0) {
        /* symbolic: count distinct output columns per row */
        for (int64_t i = 0; i < m; i++) {
            int64_t count = 0;
            for (int64_t jj = a_ptr[i]; jj < a_ptr[i + 1]; jj++) {
                int64_t j = a_col[jj];
                for (int64_t kk = b_ptr[j]; kk < b_ptr[j + 1]; kk++) {
                    int64_t c = b_col[kk];
                    if (marker[c] != i) { marker[c] = i; count++; }
                }
            }
            c_ptr[i + 1] = count;
        }
        return;
    }
    /* numeric: accumulate through the dense marker, then sort columns */
    for (int64_t i = 0; i < m; i++) {
        int64_t stamp = m + i;          /* never collides with phase 0 */
        int64_t lo = c_ptr[i], top = lo;
        for (int64_t jj = a_ptr[i]; jj < a_ptr[i + 1]; jj++) {
            int64_t j = a_col[jj];
            double av = a_val[jj];
            for (int64_t kk = b_ptr[j]; kk < b_ptr[j + 1]; kk++) {
                int64_t c = b_col[kk];
                if (marker[c] != stamp) {
                    marker[c] = stamp;
                    c_acc[c] = 0.0;
                    c_col[top++] = c;
                }
                c_acc[c] = c_acc[c] + av * b_val[kk];
            }
        }
        _sort_cols(c_col + lo, top - lo);
        for (int64_t t = lo; t < top; t++) c_val[t] = c_acc[c_col[t]];
    }
}
"""

_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_F64 = ctypes.POINTER(ctypes.c_double)

_bound_fn = None
_bind_lock = threading.Lock()


def _bind(cache_mode: str = "memory"):
    """Compile (or fetch from the artifact cache) and ctype-bind the
    SpGEMM kernel.  Raises when no toolchain is available."""
    global _bound_fn
    with _bind_lock:
        if _bound_fn is not None:
            return _bound_fn
        from repro.core import backend as be

        fn, _ = be.compile_native_function(C_SOURCE, want_openmp=False,
                                           cache_mode=cache_mode)
        fn.argtypes = ([ctypes.c_int64] * 3
                       + [ctypes.c_void_p] * 6
                       + [ctypes.c_void_p] * 5)
        fn.restype = None
        _bound_fn = fn
        return fn


def reset_binding() -> None:
    """Forget the bound kernel (test hook — pairs with
    :func:`repro.core.backend.reset_toolchain_cache`)."""
    global _bound_fn
    with _bind_lock:
        _bound_fn = None


def spgemm_csr_csr_native(A, B, cache_mode: str = "memory"
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Canonical COO triples of ``C = A B`` for CSR×CSR via the native
    two-pass kernel: ``(rows, cols, vals, nmults)``, byte-identical to
    the vectorized tier.  Raises on toolchain absence or compile failure
    (the caller decides the fallback)."""
    fn = _bind(cache_mode)
    m, n = A.nrows, B.ncols
    a_ptr = np.ascontiguousarray(A.rowptr, dtype=np.int64)
    a_col = np.ascontiguousarray(A.colind, dtype=np.int64)
    a_val = np.ascontiguousarray(A.values, dtype=np.float64)
    b_ptr = np.ascontiguousarray(B.rowptr, dtype=np.int64)
    b_col = np.ascontiguousarray(B.colind, dtype=np.int64)
    b_val = np.ascontiguousarray(B.values, dtype=np.float64)
    marker = np.full(n, -1, dtype=np.int64)
    c_ptr = np.zeros(m + 1, dtype=np.int64)
    c_acc = np.zeros(n, dtype=np.float64)
    empty_i = np.zeros(0, dtype=np.int64)
    empty_d = np.zeros(0, dtype=np.float64)

    def ptr(arr):
        return ctypes.c_void_p(arr.ctypes.data)

    base = (m, n, ptr(a_ptr), ptr(a_col), ptr(a_val),
            ptr(b_ptr), ptr(b_col), ptr(b_val), ptr(marker), ptr(c_ptr))
    with INSTR.phase("spgemm.symbolic"):
        fn(0, *base, ptr(empty_i), ptr(c_acc), ptr(empty_d))
        np.cumsum(c_ptr, out=c_ptr)
    nnz = int(c_ptr[m])
    c_col = np.zeros(nnz, dtype=np.int64)
    c_val = np.zeros(nnz, dtype=np.float64)
    with INSTR.phase("spgemm.numeric"):
        fn(1, *base, ptr(c_col), ptr(c_acc), ptr(c_val))
    rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(c_ptr))
    nmults = int((b_ptr[a_col + 1] - b_ptr[a_col]).sum()) if a_col.size else 0
    return rows, c_col, c_val, nmults

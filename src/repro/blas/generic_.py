"""Format-agnostic sparse BLAS kernels (the NIST-Fortran analog).

One code per operation, written once against the *abstract* interfaces —
non-zero enumeration through the path runtimes, and random-access ``get``
for the solves.  This is the paper's "less specialized" baseline: correct
for every format, but paying virtual-dispatch and search costs the
specialized/generated kernels avoid.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import SparseFormat


def iter_nonzeros(A: SparseFormat):
    """Enumerate (r, c, value) of all stored entries through the abstract
    path API, covering every aggregation branch."""
    for branch in A.union_branches():
        path = next(p for p in A.paths() if p.branch == branch)
        rt = A.runtime(path.path_id)
        subs_r = path.subs["r"]
        subs_c = path.subs["c"]

        def walk(step, prefix, env):
            if step == len(path.steps):
                r = int(subs_r.evaluate(env))
                c = int(subs_c.evaluate(env))
                yield r, c, rt.get(prefix)
                return
            for keys, st in rt.enumerate(step, prefix):
                env2 = dict(env)
                for ax, k in zip(path.steps[step].axes, keys):
                    env2[ax.name] = k
                yield from walk(step + 1, prefix + (st,), env2)

        yield from walk(0, (), {})


def mvm(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """y = A x through abstract enumeration."""
    for r in range(A.nrows):
        y[r] = 0.0
    for r, c, v in iter_nonzeros(A):
        y[r] += v * x[c]
    return y


def mvm_t(A: SparseFormat, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """y = A^T x through abstract enumeration."""
    for c in range(A.ncols):
        y[c] = 0.0
    for r, c, v in iter_nonzeros(A):
        y[c] += v * x[r]
    return y


def mm(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Y = A X with X a dense n×k panel, through abstract enumeration —
    one panel-row axpy per stored entry."""
    Y[...] = 0.0
    for r, c, v in iter_nonzeros(A):
        Y[r] += v * X[c]
    return Y


def mm_t(A: SparseFormat, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Y = A^T X through abstract enumeration."""
    Y[...] = 0.0
    for r, c, v in iter_nonzeros(A):
        Y[c] += v * X[r]
    return Y


def spgemm_coo(A: SparseFormat, B: SparseFormat):
    """Sparse×sparse product ``C = A B`` through abstract enumeration,
    returned as canonical COO triples ``(rows, cols, vals)`` (row-major
    sorted, duplicates summed) plus the count of intermediate products.

    One code for every format pair: B's stored entries are gathered into
    per-row lists through :func:`iter_nonzeros`, then each stored entry
    of A expands against the matching B row.  Duplicate output
    coordinates (several A entries landing on one ``C[r, c]``) are left
    for :func:`repro.formats.base.coo_dedup_sort` to sum — the same
    canonicalization every constructor applies, so the triples feed any
    output format's ``_from_canonical_coo`` construction core directly.
    """
    from repro.formats.base import coo_dedup_sort

    b_rows: list = [[] for _ in range(B.nrows)]
    for r, c, v in iter_nonzeros(B):
        b_rows[r].append((c, v))
    out_r: list = []
    out_c: list = []
    out_v: list = []
    nmults = 0
    for r, c, v in iter_nonzeros(A):
        for c2, v2 in b_rows[c]:
            out_r.append(r)
            out_c.append(c2)
            out_v.append(v * v2)
            nmults += 1
    rows, cols, vals = coo_dedup_sort(
        np.array(out_r, dtype=np.int64), np.array(out_c, dtype=np.int64),
        np.array(out_v, dtype=np.float64), (A.nrows, B.ncols), order="row")
    return rows, cols, vals, nmults


def ts_lower(L: SparseFormat, b: np.ndarray) -> np.ndarray:
    """Forward substitution through random access: one code for every
    format, each element located with ``get`` (the generality/performance
    trade the paper's Fortran baseline makes)."""
    n = L.nrows
    for r in range(n):
        acc = b[r]
        for c in range(r):
            v = L.get(r, c)
            if v != 0.0:
                acc -= v * b[c]
        b[r] = acc / L.get(r, r)
    return b


def ts_lower_enum(L: SparseFormat, b: np.ndarray) -> np.ndarray:
    """Forward substitution by repeated row extraction through the abstract
    enumeration (still generic, but avoids the dense column scan).  The
    intermediate point between the random-access code and the specialized
    kernels."""
    n = L.nrows
    rows = [[] for _ in range(n)]
    for r, c, v in iter_nonzeros(L):
        rows[r].append((c, v))
    for r in range(n):
        acc = b[r]
        diag = 0.0
        for c, v in rows[r]:
            if c < r:
                acc -= v * b[c]
            elif c == r:
                diag = v
        b[r] = acc / diag
    return b


def ts_upper(U: SparseFormat, b: np.ndarray) -> np.ndarray:
    """Backward substitution through random access."""
    n = U.nrows
    for r in range(n - 1, -1, -1):
        acc = b[r]
        for c in range(n - 1, r, -1):
            v = U.get(r, c)
            if v != 0.0:
                acc -= v * b[c]
        b[r] = acc / U.get(r, r)
    return b

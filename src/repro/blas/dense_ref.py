"""NumPy oracles: ground truth for every BLAS operation."""

from __future__ import annotations

import numpy as np


def mvm(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return A @ x


def mvm_t(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return A.T @ x


def mm(A: np.ndarray, X: np.ndarray) -> np.ndarray:
    return A @ X


def mm_t(A: np.ndarray, X: np.ndarray) -> np.ndarray:
    return A.T @ X


def spgemm(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """C = A B with both operands dense — the structure-blind oracle the
    sparse×sparse tiers are differentially tested against."""
    return A @ B


def ts_lower(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    import scipy.linalg as sla

    return sla.solve_triangular(L, b, lower=True)


def ts_upper(U: np.ndarray, b: np.ndarray) -> np.ndarray:
    import scipy.linalg as sla

    return sla.solve_triangular(U, b, lower=False)


def flops_mvm(nnz: int) -> int:
    """Multiply + add per stored entry."""
    return 2 * nnz


def flops_mm(nnz: int, k: int) -> int:
    """Multiply + add per stored entry per right-hand-side column."""
    return 2 * nnz * k


def flops_ts(nnz: int, n: int) -> int:
    """Multiply + subtract per off-diagonal entry, one division per row."""
    return 2 * (nnz - n) + n


def flops_spgemm(nmults: int) -> int:
    """Multiply + add per intermediate product of the sparse×sparse
    expansion (``nmults`` = sum over stored A entries of the matching B
    row length — data-dependent, unlike the declared-structure kernels)."""
    return 2 * nmults

"""NumPy oracles: ground truth for every BLAS operation."""

from __future__ import annotations

import numpy as np


def mvm(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return A @ x


def mvm_t(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return A.T @ x


def mm(A: np.ndarray, X: np.ndarray) -> np.ndarray:
    return A @ X


def mm_t(A: np.ndarray, X: np.ndarray) -> np.ndarray:
    return A.T @ X


def ts_lower(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    import scipy.linalg as sla

    return sla.solve_triangular(L, b, lower=True)


def ts_upper(U: np.ndarray, b: np.ndarray) -> np.ndarray:
    import scipy.linalg as sla

    return sla.solve_triangular(U, b, lower=False)


def flops_mvm(nnz: int) -> int:
    """Multiply + add per stored entry."""
    return 2 * nnz


def flops_mm(nnz: int, k: int) -> int:
    """Multiply + add per stored entry per right-hand-side column."""
    return 2 * nnz * k


def flops_ts(nnz: int, n: int) -> int:
    """Multiply + subtract per off-diagonal entry, one division per row."""
    return 2 * (nnz - n) + n
